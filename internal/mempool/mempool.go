// Package mempool provides size-classed free lists for objects that
// carry a growable buffer — the allocation-recycling half of the mvstm
// commit pipeline (version chains and their overflow slices), shaped
// after the block pool in SNIPPETS.md snippet 2: capacity requests round
// up to a power-of-two class, each class fronts its own sync.Pool, and
// objects whose capacity no longer matches a class are dropped to the
// garbage collector instead of being filed in the wrong list.
//
// The pool is deliberately not a general allocator: Put is only sound
// once no goroutine can still reach the object. Callers that hand pooled
// memory to concurrent readers (as mvstm does with published version
// chains) must run their own quiescence protocol — epoch registration,
// grace periods — and only Put after it proves the object unreachable.
// Dropping an object on the floor is always safe (the GC reclaims it
// once the last reader lets go); Put is the optimization, not the
// requirement.
//
// Building with `-tags mempoolcheck` arms the checked mode: every Put is
// recorded in a live registry, a double Put panics with both call sites'
// stacks reachable from the panic, and Reset hooks are expected to
// poison the object so a use-after-Put read fails loudly instead of
// returning stale data. The race-focused CI step runs the mvstm suite
// under this tag.
package mempool

import "sync"

// nClasses is the number of capacity classes: class 0 holds objects with
// no buffer (capacity 0), class i ≥ 1 holds capacity minCap<<(i-1).
const nClasses = 12

// minCap is the smallest non-zero class capacity.
const minCap = 4

// maxCap is the largest pooled capacity; larger requests are allocated
// directly and never pooled (a single giant object must not ride the
// free lists forever).
const maxCap = minCap << (nClasses - 2) // 4096

// ClassPool is a size-classed pool of *T objects. T carries a buffer
// whose capacity is fixed at construction (New) and reported by CapOf;
// Get rounds the requested capacity up to a class and Put files the
// object back under its class. The zero value is not usable; construct
// with NewClassPool.
type ClassPool[T any] struct {
	newFn   func(capacity int) *T
	capOf   func(*T) int
	resetFn func(*T)
	classes [nClasses]sync.Pool
}

// NewClassPool builds a pool from the three object hooks:
//
//   - newFn(capacity) allocates a fresh object with a buffer of exactly
//     the given capacity (a class size, or larger for oversize requests);
//   - capOf reports the object's buffer capacity, used to classify Put;
//   - reset (optional) is called on every Put before the object is filed,
//     and must drop references the object holds so pooled memory does not
//     pin user data; under -tags mempoolcheck it should also poison the
//     object so use-after-Put fails loudly.
func NewClassPool[T any](newFn func(capacity int) *T, capOf func(*T) int, reset func(*T)) *ClassPool[T] {
	if newFn == nil || capOf == nil {
		panic("mempool: NewClassPool requires new and capOf hooks")
	}
	return &ClassPool[T]{newFn: newFn, capOf: capOf, resetFn: reset}
}

// classFor returns the class index whose capacity is the smallest that
// covers n, or -1 when n exceeds maxCap.
func classFor(n int) int {
	if n <= 0 {
		return 0
	}
	if n > maxCap {
		return -1
	}
	c := minCap
	for i := 1; ; i++ {
		if n <= c {
			return i
		}
		c <<= 1
	}
}

// classCap returns the buffer capacity of a class.
func classCap(i int) int {
	if i == 0 {
		return 0
	}
	return minCap << (i - 1)
}

// Get returns an object whose buffer capacity is at least n: a recycled
// one from n's class when available, else a fresh allocation of the
// class capacity (or of exactly n for oversize requests, which bypass
// the pool entirely).
func (p *ClassPool[T]) Get(n int) *T {
	cls := classFor(n)
	if cls < 0 {
		return p.newFn(n)
	}
	if v, ok := p.classes[cls].Get().(*T); ok {
		checkGet(v)
		return v
	}
	return p.newFn(classCap(cls))
}

// Put recycles an object into its capacity class. Objects whose capacity
// is not an exact class size (oversize allocations, or foreign objects)
// are dropped to the GC — filing them would hand Get a buffer smaller or
// larger than its class promises. The reset hook runs first either way,
// so even a dropped object sheds its references.
func (p *ClassPool[T]) Put(x *T) {
	if x == nil {
		return
	}
	if p.resetFn != nil {
		p.resetFn(x)
	}
	c := p.capOf(x)
	cls := classFor(c)
	if cls < 0 || classCap(cls) != c {
		return // oversize or off-class: let the GC have it
	}
	checkPut(x)
	p.classes[cls].Put(x)
}
