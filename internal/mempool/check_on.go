//go:build mempoolcheck

package mempool

import (
	"fmt"
	"sync"
)

// Checked mode: a registry of every pointer currently filed in some
// pool. Put of a pointer already in the registry is a double Put — two
// goroutines racing to recycle the same object, or one recycling an
// object still published — and panics immediately, at the second Put
// site, instead of corrupting the free list and failing much later as a
// torn Get. Get removes the pointer again, so the registry's size is
// bounded by the pooled population.
//
// Use-after-Put is covered by the Reset hook contract (poison on Put),
// not by the registry: the registry cannot see reads.

var (
	liveMu sync.Mutex
	live   = map[any]bool{}
)

func checkPut(x any) {
	liveMu.Lock()
	defer liveMu.Unlock()
	if live[x] {
		panic(fmt.Sprintf("mempool: double Put of %p (object already in the pool)", x))
	}
	live[x] = true
}

func checkGet(x any) {
	liveMu.Lock()
	delete(live, x)
	liveMu.Unlock()
}

// Checking reports whether the build has the mempoolcheck registry armed.
const Checking = true
