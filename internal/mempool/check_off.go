//go:build !mempoolcheck

package mempool

// Checked-mode hooks compile to nothing in normal builds; the live
// registry and its lock exist only under -tags mempoolcheck.

func checkPut(any) {}
func checkGet(any) {}

// Checking reports whether the build has the mempoolcheck registry armed
// (tests use it to skip the double-put assertions in normal builds).
const Checking = false
