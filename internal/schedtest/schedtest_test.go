package schedtest

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/sched"
	"repro/internal/syncpoint"
)

// TestRoundRobinAlternates drives two workers through three parks each and
// asserts the fair policy strictly alternates them.
func TestRoundRobinAlternates(t *testing.T) {
	h := New()
	hook := h.Hook()
	body := func() {
		hook(syncpoint.Begin)
		hook(syncpoint.PreLock)
		hook(syncpoint.PrePublish)
	}
	h.Go(body)
	h.Go(body)
	if err := h.Run(&sched.RoundRobin{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	log := h.Log()
	if len(log) != 6 {
		t.Fatalf("expected 6 parks, got %d: %v", len(log), log)
	}
	for i, s := range log {
		if s.Worker != i%2 {
			t.Fatalf("step %d ran worker %d, want strict alternation: %v", i, s.Worker, log)
		}
	}
	// The pick schedule additionally records the completion grant of each
	// worker (its run from last park to done), which never reaches a hook.
	if sch := h.Schedule(); len(sch) != 8 {
		t.Fatalf("expected 8 picks (6 parks + 2 completion grants), got %d: %v", len(sch), sch)
	}
}

// TestReplayDeterminism runs the same explicit schedule twice against a
// racy read-modify-write program and asserts both the executed schedule
// and the program outcome are identical.
func TestReplayDeterminism(t *testing.T) {
	// Schedule the classic lost update: strict alternation parks both
	// workers at PreLock after loading x=0, so both store 1 and the final
	// value is 1, not 2 — deterministically.
	schedule := []int{0, 1, 0, 1, 0, 1}
	run := func() (int, []Step) {
		h := New()
		hook := h.Hook()
		x := 0
		body := func() {
			hook(syncpoint.Begin)
			tmp := x
			hook(syncpoint.PreLock)
			x = tmp + 1
			hook(syncpoint.PrePublish)
		}
		h.Go(body)
		h.Go(body)
		if err := h.Run(sched.NewReplay(schedule)); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return x, h.Log()
	}
	x1, log1 := run()
	x2, log2 := run()
	if x1 != 1 || x2 != 1 {
		t.Fatalf("lost-update schedule should yield x=1 both times, got %d and %d", x1, x2)
	}
	if fmt.Sprint(log1) != fmt.Sprint(log2) {
		t.Fatalf("same schedule, different executions:\n%v\n%v", log1, log2)
	}
}

// TestExploreRunnerFindsLostUpdate lets the preemption-bounded
// enumeration search for the interleaving that loses an update, then
// replays the reported schedule and asserts it reproduces the loss.
func TestExploreRunnerFindsLostUpdate(t *testing.T) {
	shared := 0
	build := func() (sched.Runner, func() error) {
		h := New()
		hook := h.Hook()
		shared = 0
		body := func() {
			hook(syncpoint.Begin)
			tmp := shared
			hook(syncpoint.PreLock)
			shared = tmp + 1
			hook(syncpoint.PrePublish)
		}
		h.Go(body)
		h.Go(body)
		return h, func() error {
			if shared != 2 {
				return fmt.Errorf("lost update: x=%d", shared)
			}
			return nil
		}
	}
	_, err := sched.ExploreRunner(build, sched.ExploreOpts{MaxPreemptions: 2, MaxRuns: 1_000})
	var ee *sched.ErrExplore
	if !errors.As(err, &ee) {
		t.Fatalf("exploration should find the lost-update interleaving, got %v", err)
	}

	// The counterexample replays deterministically.
	h := New()
	hook := h.Hook()
	shared = 0
	body := func() {
		hook(syncpoint.Begin)
		tmp := shared
		hook(syncpoint.PreLock)
		shared = tmp + 1
		hook(syncpoint.PrePublish)
	}
	h.Go(body)
	h.Go(body)
	if err := h.Run(sched.NewReplay(ee.Schedule)); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if shared != 1 {
		t.Fatalf("counterexample schedule %v no longer loses the update: x=%d", ee.Schedule, shared)
	}
}

// TestStepLimitAbandons pins the free-run teardown: a worker spinning at
// SpinWait forever exceeds the limit, Run reports sched.ErrStepLimit,
// and the spinner is unwound (no goroutine leak, no hang).
func TestStepLimitAbandons(t *testing.T) {
	h := New()
	h.SetStepLimit(16)
	hook := h.Hook()
	h.Go(func() {
		for {
			hook(syncpoint.SpinWait) // waits for a condition nobody will produce
		}
	})
	h.Go(func() {
		hook(syncpoint.Begin)
	})
	err := h.Run(&sched.RoundRobin{})
	if !errors.Is(err, sched.ErrStepLimit) {
		t.Fatalf("expected ErrStepLimit, got %v", err)
	}
}

// TestWorkerPanicSurfaces pins that a worker panic is reported as a Run
// error and the sibling is abandoned cleanly.
func TestWorkerPanicSurfaces(t *testing.T) {
	h := New()
	hook := h.Hook()
	h.Go(func() {
		hook(syncpoint.Begin)
		panic("boom")
	})
	h.Go(func() {
		hook(syncpoint.Begin)
		hook(syncpoint.PreLock)
	})
	err := h.Run(&sched.RoundRobin{})
	if err == nil || !errors.Is(err, sched.ErrStepLimit) && err.Error() == "" {
		t.Fatalf("expected a panic error, got %v", err)
	}
	if err == nil || !contains(err.Error(), "boom") {
		t.Fatalf("expected the panic value in the error, got %v", err)
	}
}

// TestOneShot pins that a Harness refuses a second Run.
func TestOneShot(t *testing.T) {
	h := New()
	h.Go(func() {})
	if err := h.Run(&sched.RoundRobin{}); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if err := h.Run(&sched.RoundRobin{}); err == nil {
		t.Fatal("second Run should error")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
