// Package schedtest is a deterministic interleaving harness for the
// *native* STM engines (repro/stm, repro/stm/norecstm, repro/stm/mvstm):
// the engine-side counterpart of internal/sched's cooperative scheduler
// over simulated memory. Where sched interposes on every primitive of a
// simulated algorithm, schedtest interposes on the handful of sync
// points the engines expose through their test-only hooks (see each
// engine's syncpoint.go and internal/syncpoint for the point map): a
// worker goroutine running real transactions parks at every hook call,
// and the harness releases exactly one worker at a time according to a
// sched.Policy. An execution is then a pure function of the policy's
// choices, so
//
//   - the adversarial policies (RoundRobin, Replay) and Explore's
//     preemption-bounded enumeration replay verbatim against the real
//     engines (Harness implements sched.Runner), and
//   - race-only pathologies — a writer landing between a reader's
//     certify and its extension, a GC sweep racing a snapshot pin —
//     become deterministic regression tests instead of stress-test
//     lottery tickets.
//
// # Protocol
//
// Register workers with Go, install the harness hook in the engine under
// test (stm.SetSyncHook(h.Hook(), h.Proc()) and friends, exported to
// each engine's test binary), then Run with a policy. Exactly one worker
// runs between parks, so the engine sees a serial-but-interleaved
// execution; the Proc func reports the running worker's id, which the
// engine trace hooks record as the history Proc — making replayed
// histories byte-identical across runs of the same schedule.
//
// # Teardown
//
// A run that exceeds its step limit (or trips a policy error) cannot
// kill parked workers the way sched does: a worker parked inside a
// commit holds real engine locks (a norecstm worker may even hold the
// package-global sequence lock), and killing it would poison the engine
// for every later test in the process. Instead the harness abandons the
// schedule and free-runs: the hook becomes a no-op, every parked worker
// is granted, and the workers complete naturally under the Go scheduler.
// The one exception is SpinWait — a worker spinning on a condition no
// finished sibling will ever produce (a Retry with no future writer)
// would free-run forever, and a spinning worker by construction holds no
// engine locks, so free-running hooks panic a kill sentinel there; the
// engines' panic-safety paths (the same ones the budget tests pin)
// release the descriptor cleanly.
package schedtest

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/sched"
	"repro/internal/syncpoint"
)

// Step is one granted hook park: which worker parked, and at which
// engine sync point. The log of steps is the schedule actually executed,
// in grant order.
type Step struct {
	Worker int
	Point  syncpoint.Point
}

// String renders the step as "w<id>:<point>".
func (s Step) String() string { return fmt.Sprintf("w%d:%s", s.Worker, s.Point) }

// killSentinel unwinds a free-running worker out of an unsatisfiable
// spin wait (see the teardown notes in the package comment).
type killSentinel struct{}

type worker struct {
	id     int
	fn     func()
	grant  chan struct{}
	parked chan struct{}
	done   chan struct{}
	panicv any
}

// Harness coordinates a set of workers running native-engine
// transactions under a deterministic schedule. A Harness is one-shot:
// build a fresh one per Run (ExploreRunner's build func does exactly
// that). It implements sched.Runner.
type Harness struct {
	ws []*worker
	// cur is the id of the worker currently holding the grant; the hook
	// reads it to identify its caller (exactly one worker runs at a
	// time). Atomic only because free-running workers may still consult
	// it through Proc after abandonment.
	cur atomic.Int64
	// released flips the hook into free-run mode during abandonment.
	released  atomic.Bool
	stepLimit uint64
	log       []Step
	picks     []int
	ran       bool
}

// New returns an empty harness.
func New() *Harness { return &Harness{} }

// Go registers fn as a worker and returns its id (assigned in
// registration order, starting at 0). Schedules name workers by these
// ids. fn runs real engine transactions; it must not spawn goroutines of
// its own that touch the engine.
func (h *Harness) Go(fn func()) int {
	w := &worker{
		id:     len(h.ws),
		fn:     fn,
		grant:  make(chan struct{}),
		parked: make(chan struct{}),
		done:   make(chan struct{}),
	}
	h.ws = append(h.ws, w)
	return w.id
}

// SetStepLimit bounds the next Run's granted steps (0 means the default
// of 1 million); exceeding it abandons the schedule and returns an error
// wrapping sched.ErrStepLimit, as sched.Runner requires.
func (h *Harness) SetStepLimit(n uint64) { h.stepLimit = n }

// Hook returns the engine sync-point callback to install via the engine's
// SetSyncHook test export. It parks the calling worker until the
// schedule grants it.
func (h *Harness) Hook() func(syncpoint.Point) { return h.hook }

// Proc returns the worker-id source to install alongside Hook: it
// reports the id of the worker currently holding the grant, which the
// engine trace hooks record as the history Proc.
func (h *Harness) Proc() func() int { return h.proc }

// Log returns the executed parks: one Step per hook call, in grant
// order. Valid after Run returns; the log of an abandoned run covers
// only the scheduled prefix.
func (h *Harness) Log() []Step { return append([]Step(nil), h.log...) }

// Schedule returns the full pick sequence of the run — every grant,
// including the final grant that lets a worker run from its last park to
// completion. Those completion grants never reach a hook, so they are
// absent from Log; a replay built from Log alone diverges (the original
// run let a worker finish and release its locks mid-schedule, the
// truncated replay never does). Feed Schedule, not Log, to
// sched.NewReplay.
func (h *Harness) Schedule() []int { return append([]int(nil), h.picks...) }

// Count reports how many times worker has parked at point so far. It is
// stable while a Pick is in progress (exactly one worker runs between
// parks), which makes it the natural phase variable for scripted
// policies: "run the reader until it has certified once, then run the
// writer to completion".
func (h *Harness) Count(worker int, p syncpoint.Point) int {
	n := 0
	for _, s := range h.log {
		if s.Worker == worker && s.Point == p {
			n++
		}
	}
	return n
}

// PolicyFunc adapts a pick function to sched.Policy, for test-local
// scripted schedules (typically closing over the Harness and phasing on
// Count). The zero Label reports as "scripted".
type PolicyFunc struct {
	Label  string
	PickFn func(runnable []int, step uint64) int
}

// Name implements sched.Policy.
func (p *PolicyFunc) Name() string {
	if p.Label == "" {
		return "scripted"
	}
	return p.Label
}

// Pick implements sched.Policy.
func (p *PolicyFunc) Pick(runnable []int, step uint64) int { return p.PickFn(runnable, step) }

func (h *Harness) proc() int { return int(h.cur.Load()) }

func (h *Harness) hook(p syncpoint.Point) {
	if h.released.Load() {
		if p == syncpoint.SpinWait {
			// Free-running, and spinning on a condition only the Go
			// scheduler's mercy could satisfy: unwind (spin waits hold no
			// engine locks; the engine's panic path recycles the
			// descriptor).
			panic(killSentinel{})
		}
		return
	}
	id := int(h.cur.Load())
	h.log = append(h.log, Step{Worker: id, Point: p})
	w := h.ws[id]
	w.parked <- struct{}{}
	<-w.grant
}

// Run executes all registered workers to completion under the policy,
// granting one park at a time. The policy sees the same runnable-set /
// pick protocol as sched.Scheduler.Run, so RoundRobin, Replay and
// Explore's guided policy work unchanged. Returns an error wrapping
// sched.ErrStepLimit if the schedule exceeds the step budget, and
// surfaces worker panics as errors. One-shot: a second Run errors.
func (h *Harness) Run(policy sched.Policy) error {
	if h.ran {
		return errors.New("schedtest: Harness is one-shot; build a fresh one per Run")
	}
	h.ran = true
	ws := h.ws
	if len(ws) == 0 {
		return nil
	}
	limit := h.stepLimit
	if limit == 0 {
		limit = 1_000_000
	}
	for _, w := range ws {
		go func() {
			defer func() {
				w.panicv = recover()
				close(w.done)
			}()
			// Park once before running so no engine code executes until
			// the schedule grants the first step.
			w.parked <- struct{}{}
			<-w.grant
			w.fn()
		}()
	}
	parked := make([]bool, len(ws))
	for _, w := range ws {
		<-w.parked
		parked[w.id] = true
	}
	finished := 0
	var steps uint64
	runnable := make([]int, 0, len(ws))
	for finished < len(ws) {
		if steps >= limit {
			h.abandon(parked)
			return fmt.Errorf("schedtest: %w (limit %d, policy %s)", sched.ErrStepLimit, limit, policy.Name())
		}
		runnable = runnable[:0]
		for _, w := range ws {
			if parked[w.id] {
				runnable = append(runnable, w.id)
			}
		}
		if len(runnable) == 0 {
			return errors.New("schedtest: no runnable worker (internal error)")
		}
		pick := policy.Pick(runnable, steps)
		if pick < 0 || pick >= len(ws) || !parked[pick] {
			h.abandon(parked)
			return fmt.Errorf("schedtest: policy %s picked non-runnable worker %d", policy.Name(), pick)
		}
		parked[pick] = false
		steps++
		h.picks = append(h.picks, pick)
		w := ws[pick]
		h.cur.Store(int64(pick))
		w.grant <- struct{}{}
		select {
		case <-w.parked:
			parked[pick] = true
		case <-w.done:
			finished++
			if w.panicv != nil {
				h.abandon(parked)
				return fmt.Errorf("schedtest: worker %d panicked: %v", w.id, w.panicv)
			}
		}
	}
	return nil
}

// abandon gives up on the schedule without killing anyone: flip the hook
// into free-run mode, grant every parked worker, and wait for them to
// complete naturally (see the teardown notes in the package comment).
// On return every worker goroutine has exited and no engine locks are
// held.
func (h *Harness) abandon(parked []bool) {
	h.released.Store(true)
	for _, w := range h.ws {
		if parked[w.id] {
			w.grant <- struct{}{}
		}
	}
	for _, w := range h.ws {
		if parked[w.id] {
			<-w.done
		}
	}
}
