// Package tmreg is the registry of TM algorithm constructors, shared by the
// experiment harness, the CLI tools, and the public facade.
package tmreg

import (
	"fmt"
	"sort"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/dstm"
	"repro/internal/tm/irtm"
	"repro/internal/tm/mvtm"
	"repro/internal/tm/norec"
	"repro/internal/tm/sgltm"
	"repro/internal/tm/tl2"
	"repro/internal/tm/tml"
	"repro/internal/tm/vrtm"
)

// Constructor builds a TM instance over nobj t-objects on mem.
type Constructor func(mem *memory.Memory, nobj int) tm.TM

var registry = map[string]Constructor{
	"irtm":    func(m *memory.Memory, n int) tm.TM { return irtm.New(m, n) },
	"tl2":     func(m *memory.Memory, n int) tm.TM { return tl2.New(m, n) },
	"norec":   func(m *memory.Memory, n int) tm.TM { return norec.New(m, n) },
	"vrtm":    func(m *memory.Memory, n int) tm.TM { return vrtm.New(m, n) },
	"sgltm":   func(m *memory.Memory, n int) tm.TM { return sgltm.New(m, n) },
	"mvtm":    func(m *memory.Memory, n int) tm.TM { return mvtm.New(m, n) },
	"mvtm-gc": func(m *memory.Memory, n int) tm.TM { return mvtm.NewWithGC(m, n) },
	"dstm":    func(m *memory.Memory, n int) tm.TM { return dstm.New(m, n) },
	"tml":     func(m *memory.Memory, n int) tm.TM { return tml.New(m, n) },
}

// Names returns the registered algorithm names in stable order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New builds the named TM over nobj t-objects.
func New(name string, mem *memory.Memory, nobj int) (tm.TM, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("tmreg: unknown TM %q (known: %v)", name, Names())
	}
	return c(mem, nobj), nil
}

// MustNew is New, panicking on unknown names; for tests and examples.
func MustNew(name string, mem *memory.Memory, nobj int) tm.TM {
	t, err := New(name, mem, nobj)
	if err != nil {
		panic(err)
	}
	return t
}
