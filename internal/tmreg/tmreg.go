// Package tmreg is the registry of TM algorithm constructors, shared by
// the experiment harness (internal/exp), the CLI tools (cmd/tmbench and
// friends) and the public facade (the root progressivetm package).
//
// Plain names ("irtm", "tl2", "norec", …) build the algorithms as the
// paper defines them; the "tl2:<spec>" form builds TL2 ablation variants
// with a chosen clock strategy and/or timestamp extension (see New and
// ClockVariants) — the axis the E5/E9 tables sweep. Registering an
// algorithm here is all it takes to appear in every experiment, the
// taxonomy table, and the conformance suite.
package tmreg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/memory"
	"repro/internal/tm"
	"repro/internal/tm/dstm"
	"repro/internal/tm/irtm"
	"repro/internal/tm/mvtm"
	"repro/internal/tm/norec"
	"repro/internal/tm/sgltm"
	"repro/internal/tm/tictoc"
	"repro/internal/tm/tl2"
	"repro/internal/tm/tml"
	"repro/internal/tm/vrtm"
)

// Constructor builds a TM instance over nobj t-objects on mem.
type Constructor func(mem *memory.Memory, nobj int) tm.TM

var registry = map[string]Constructor{
	"irtm":    func(m *memory.Memory, n int) tm.TM { return irtm.New(m, n) },
	"tl2":     func(m *memory.Memory, n int) tm.TM { return tl2.New(m, n) },
	"norec":   func(m *memory.Memory, n int) tm.TM { return norec.New(m, n) },
	"vrtm":    func(m *memory.Memory, n int) tm.TM { return vrtm.New(m, n) },
	"sgltm":   func(m *memory.Memory, n int) tm.TM { return sgltm.New(m, n) },
	"mvtm":    func(m *memory.Memory, n int) tm.TM { return mvtm.New(m, n) },
	"mvtm-gc": func(m *memory.Memory, n int) tm.TM { return mvtm.NewWithGC(m, n) },
	"dstm":    func(m *memory.Memory, n int) tm.TM { return dstm.New(m, n) },
	"tml":     func(m *memory.Memory, n int) tm.TM { return tml.New(m, n) },
	"tictoc":  func(m *memory.Memory, n int) tm.TM { return tictoc.New(m, n) },
}

// Names returns the registered algorithm names in stable order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New builds the named TM over nobj t-objects. Beyond the registered
// names, "tl2:<spec>" builds a TL2 variant with the given clock strategy
// and/or timestamp extension — e.g. "tl2:gv4", "tl2:ext", "tl2:gv6+ext"
// (see tl2.ParseVariant). Variants are not listed by Names(): they are the
// ablation axis of the clock-strategy experiments, not separate
// algorithms.
func New(name string, mem *memory.Memory, nobj int) (tm.TM, error) {
	if spec, ok := strings.CutPrefix(name, "tl2:"); ok {
		opts, err := tl2.ParseVariant(spec)
		if err != nil {
			return nil, fmt.Errorf("tmreg: %w", err)
		}
		return tl2.NewWithOptions(mem, nobj, opts), nil
	}
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("tmreg: unknown TM %q (known: %v)", name, Names())
	}
	return c(mem, nobj), nil
}

// ClockVariants lists the TL2 clock-strategy/extension variant names used
// by the E5 ablation axis, in sweep order.
func ClockVariants() []string {
	return []string{"tl2", "tl2:gv4", "tl2:ext", "tl2:gv4+ext", "tl2:gv6+ext", "tl2:gv7+ext"}
}

// MustNew is New, panicking on unknown names; for tests and examples.
func MustNew(name string, mem *memory.Memory, nobj int) tm.TM {
	t, err := New(name, mem, nobj)
	if err != nil {
		panic(err)
	}
	return t
}
