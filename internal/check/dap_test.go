package check_test

import (
	"testing"

	"repro/internal/check"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/tmreg"
)

// disjointWorkload runs two processes through concurrent update
// transactions on disjoint t-objects ({0,1} vs {6,7}) and returns the
// recorded history with base-access tracking.
func disjointWorkload(t *testing.T, name string, seed int64) *tm.History {
	t.Helper()
	mem := memory.New(2, nil)
	rec := tm.Record(tmreg.MustNew(name, mem, 8))
	s := sched.New(mem)
	for i := 0; i < 2; i++ {
		i := i
		lo := i * 6 // proc 0: objects 0,1; proc 1: objects 6,7
		s.Go(i, func(p *memory.Proc) {
			for n := 0; n < 3; n++ {
				tx := rec.Begin(p)
				ok := true
				for _, x := range []int{lo, lo + 1} {
					if _, err := tx.Read(x); err != nil {
						ok = false
						break
					}
					if tx.Write(x, uint64(n+1)) != nil {
						ok = false
						break
					}
				}
				if ok {
					_ = tx.Commit()
				} else {
					tx.Abort()
				}
			}
		})
	}
	if err := s.Run(sched.NewRandom(seed)); err != nil {
		t.Fatal(err)
	}
	return rec.History()
}

// TestWeakDAPMeasured verifies the paper's central classification
// *empirically*: strict data-partitioned TMs produce no disjoint-access
// contention, while every global-word TM does — measured from the actual
// base-object access logs, matching each algorithm's declared Props.
func TestWeakDAPMeasured(t *testing.T) {
	for _, name := range tmreg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			claimsDAP := tmreg.MustNew(name, memory.New(1, nil), 1).Props().WeakDAP
			sawViolation := false
			for seed := int64(1); seed <= 6; seed++ {
				h := disjointWorkload(t, name, seed)
				v := check.WeakDAP(h)
				if len(v) > 0 {
					sawViolation = true
					if claimsDAP {
						t.Fatalf("seed %d: %s claims weak DAP but contended on base object %d between disjoint txns T%d/T%d",
							seed, name, v[0].BaseObj, v[0].TxnA, v[0].TxnB)
					}
				}
			}
			if !claimsDAP && !sawViolation {
				t.Errorf("%s claims ¬weak-DAP but no disjoint-access contention was measured; the classification is untested", name)
			}
		})
	}
}

// TestInvisibleReadsMeasured verifies each TM's read-visibility class
// against the recorded logs: solo read-only transactions must apply no
// nontrivial event iff the TM claims (weak) invisible reads.
func TestInvisibleReadsMeasured(t *testing.T) {
	for _, name := range tmreg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			mem := memory.New(1, nil)
			rec := tm.Record(tmreg.MustNew(name, mem, 4))
			p := mem.Proc(0)
			// Stagger the objects' commit timestamps with two sequential
			// update transactions on object 0 before probing: from
			// quiescence every TicToc validity window is [0,0] and even its
			// reads are invisible, but once a solo reader crosses objects
			// committed at different times it must CAS-extend a window
			// during a t-read — the visibility this probe exists to measure.
			for i := 0; i < 2; i++ {
				if err := tm.Atomically(rec, p, func(w tm.Txn) error {
					v, err := w.Read(0)
					if err != nil {
						return err
					}
					return w.Write(0, v+1)
				}); err != nil {
					t.Fatalf("seeding writer: %v", err)
				}
			}
			// One solo read-only transaction (in scope for both the strong
			// and the weak definition).
			tx := rec.Begin(p)
			for x := 0; x < 4; x++ {
				if _, err := tx.Read(x); err != nil {
					t.Fatalf("solo read aborted: %v", err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("solo commit aborted: %v", err)
			}
			h := rec.History()
			props := tmreg.MustNew(name, memory.New(1, nil), 1).Props()
			weakViol := check.WeakInvisibleReads(h)
			if props.WeakInvisibleReads && len(weakViol) > 0 {
				t.Errorf("%s claims weak invisible reads; measured %d nontrivial read events (first: %+v)",
					name, len(weakViol), weakViol[0])
			}
			if !props.WeakInvisibleReads && len(weakViol) == 0 {
				t.Errorf("%s claims visible reads but its solo reads applied no nontrivial event", name)
			}
			strongViol := check.InvisibleReads(h)
			if props.InvisibleReads && len(strongViol) > 0 {
				t.Errorf("%s claims invisible reads; measured violations %+v", name, strongViol)
			}
		})
	}
}

// TestInvisibleReadsUnderConcurrency sharpens the strong/weak split: vrtm
// fails both definitions, while NOrec-style TMs keep even concurrent
// read-only transactions free of nontrivial events (strong invisibility in
// the observational sense).
func TestInvisibleReadsUnderConcurrency(t *testing.T) {
	for _, name := range []string{"irtm", "norec", "tl2", "mvtm", "dstm", "tml"} {
		name := name
		t.Run(name, func(t *testing.T) {
			mem := memory.New(2, nil)
			rec := tm.Record(tmreg.MustNew(name, mem, 4))
			s := sched.New(mem)
			s.Go(0, func(p *memory.Proc) {
				for n := 0; n < 3; n++ {
					tx := rec.Begin(p)
					ok := true
					for x := 0; x < 3 && ok; x++ {
						_, err := tx.Read(x)
						ok = err == nil
					}
					if ok {
						_ = tx.Commit()
					} else {
						tx.Abort()
					}
				}
			})
			s.Go(1, func(p *memory.Proc) {
				for n := 0; n < 3; n++ {
					_ = tm.Atomically(rec, p, func(tx tm.Txn) error {
						return tx.Write(3, uint64(n))
					})
				}
			})
			if err := s.Run(sched.NewRandom(11)); err != nil {
				t.Fatal(err)
			}
			// Only inspect the read-only transactions of proc 0.
			if v := check.InvisibleReads(rec.History()); len(v) > 0 {
				t.Errorf("%s applied nontrivial events in concurrent read-only txns: %+v", name, v)
			}
		})
	}
}

// TestDAPCheckerIgnoresConnectedContention verifies the G(Ti,Tj,E) clause:
// two transactions with disjoint data sets that are *connected* through a
// third concurrent transaction's data set may legally contend.
func TestDAPCheckerIgnoresConnectedContention(t *testing.T) {
	mem := memory.New(3, nil)
	rec := tm.Record(tmreg.MustNew("irtm", mem, 4))
	s := sched.New(mem)
	// T0 on {0}, T1 on {2}, T2 spans {0,2}: the bridge makes T0,T1
	// non-disjoint-access, so even direct contention would be licensed.
	s.Go(0, func(p *memory.Proc) {
		_ = tm.Atomically(rec, p, func(tx tm.Txn) error { return tx.Write(0, 1) })
	})
	s.Go(1, func(p *memory.Proc) {
		_ = tm.Atomically(rec, p, func(tx tm.Txn) error { return tx.Write(2, 1) })
	})
	s.Go(2, func(p *memory.Proc) {
		_ = tm.Atomically(rec, p, func(tx tm.Txn) error {
			if err := tx.Write(0, 2); err != nil {
				return err
			}
			return tx.Write(2, 2)
		})
	})
	if err := s.Run(sched.NewRandom(5)); err != nil {
		t.Fatal(err)
	}
	if v := check.WeakDAP(rec.History()); len(v) > 0 {
		t.Fatalf("bridged transactions flagged as DAP violations: %+v", v)
	}
}
