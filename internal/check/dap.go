package check

import (
	"sort"

	"repro/internal/tm"
)

// This file checks the paper's structural TM definitions — weak
// disjoint-access parallelism and (weak) invisible reads — against
// *measured* base-object access logs recorded by tm.Recorder, rather than
// trusting each algorithm's self-declared Props.
//
// Contention is approximated observationally: two transactions contend on
// a base object if both accessed it, at least one nontrivially, and the
// transactions were concurrent. (The paper's definition is about being
// concurrently *poised* to access; any poised pair in a finite execution
// either performs the accesses — which we see — or never takes them.)

// DAPViolation reports a pair of disjoint-access transactions that
// nevertheless contended on a base object, contradicting weak DAP.
type DAPViolation struct {
	TxnA, TxnB int
	BaseObj    uint64
}

// WeakDAP verifies Attiya et al.'s weak disjoint-access parallelism on a
// recorded history: concurrent transactions may contend on a base object
// only if their data sets intersect or are connected in the conflict graph
// G(Ti, Tj, E) spanned by the data sets of transactions concurrent to
// either. It requires a history recorded with base-access tracking.
func WeakDAP(h *tm.History) []DAPViolation {
	n := len(h.Txns)
	type baseInfo struct{ trivial, nontrivial bool }
	bases := make([]map[uint64]*baseInfo, n)
	dsets := make([]map[int]bool, n)
	for i, t := range h.Txns {
		bases[i] = map[uint64]*baseInfo{}
		dsets[i] = map[int]bool{}
		for _, op := range t.Ops {
			if op.Kind == tm.OpRead || op.Kind == tm.OpWrite {
				dsets[i][op.Obj] = true
			}
			for _, a := range op.Accesses {
				bi := bases[i][a.Obj]
				if bi == nil {
					bi = &baseInfo{}
					bases[i][a.Obj] = bi
				}
				if a.Nontrivial {
					bi.nontrivial = true
				} else {
					bi.trivial = true
				}
			}
		}
	}
	concurrent := func(a, b *tm.TxnRecord) bool {
		return !h.PrecedesRT(a, b) && !h.PrecedesRT(b, a)
	}
	var out []DAPViolation
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ti, tj := h.Txns[i], h.Txns[j]
			if !concurrent(ti, tj) {
				continue
			}
			if intersects(dsets[i], dsets[j]) {
				continue // a shared t-object always licenses contention
			}
			if !disjointAccess(h, i, j, dsets) {
				continue // connected through concurrent transactions
			}
			// Disjoint-access pair: any contention is a violation.
			for b, bi := range bases[i] {
				bj, ok := bases[j][b]
				if !ok {
					continue
				}
				if bi.nontrivial || bj.nontrivial {
					out = append(out, DAPViolation{TxnA: ti.ID, TxnB: tj.ID, BaseObj: b})
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].TxnA != out[b].TxnA {
			return out[a].TxnA < out[b].TxnA
		}
		if out[a].TxnB != out[b].TxnB {
			return out[a].TxnB < out[b].TxnB
		}
		return out[a].BaseObj < out[b].BaseObj
	})
	return out
}

func intersects(a, b map[int]bool) bool {
	for x := range a {
		if b[x] {
			return true
		}
	}
	return false
}

// disjointAccess implements the paper's Section 2 definition: Ti and Tj
// are disjoint-access in E iff there is no path between a t-object in
// Dset(Ti) and one in Dset(Tj) in the graph whose vertices are the
// t-objects of transactions concurrent to Ti or Tj and whose edges connect
// objects sharing a transaction's data set.
func disjointAccess(h *tm.History, i, j int, dsets []map[int]bool) bool {
	ti, tj := h.Txns[i], h.Txns[j]
	inTau := func(t *tm.TxnRecord) bool {
		if t == ti || t == tj {
			return true
		}
		return (!h.PrecedesRT(t, ti) && !h.PrecedesRT(ti, t)) ||
			(!h.PrecedesRT(t, tj) && !h.PrecedesRT(tj, t))
	}
	// Union-find over t-objects.
	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p != x {
			parent[x] = find(p)
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for k, t := range h.Txns {
		if !inTau(t) {
			continue
		}
		prev := -1
		for x := range dsets[k] {
			if prev >= 0 {
				union(prev, x)
			}
			prev = x
		}
	}
	for x := range dsets[i] {
		for y := range dsets[j] {
			if find(x) == find(y) {
				return false
			}
		}
	}
	return true
}

// ReadVisibility describes an invisible-reads violation: a nontrivial
// primitive applied within the scope the definition forbids.
type ReadVisibility struct {
	Txn   int
	OpSeq int
	Kind  tm.OpKind
}

// InvisibleReads checks the strong definition: for every read-only
// transaction, no event of the transaction is nontrivial.
func InvisibleReads(h *tm.History) []ReadVisibility {
	var out []ReadVisibility
	for _, t := range h.Txns {
		if !t.ReadOnly() {
			continue
		}
		for i := range t.Ops {
			if t.Ops[i].NontrivialEvents() > 0 {
				out = append(out, ReadVisibility{Txn: t.ID, OpSeq: t.Ops[i].Seq, Kind: t.Ops[i].Kind})
			}
		}
	}
	return out
}

// WeakInvisibleReads checks the paper's weak definition: for every
// transaction with a non-empty read set that is concurrent with no other
// transaction, its t-*read* operations apply no nontrivial events.
func WeakInvisibleReads(h *tm.History) []ReadVisibility {
	var out []ReadVisibility
	for _, t := range h.Txns {
		if len(t.ReadSet()) == 0 || hasConcurrent(h, t) {
			continue
		}
		for i := range t.Ops {
			if t.Ops[i].Kind == tm.OpRead && t.Ops[i].NontrivialEvents() > 0 {
				out = append(out, ReadVisibility{Txn: t.ID, OpSeq: t.Ops[i].Seq, Kind: tm.OpRead})
			}
		}
	}
	return out
}

func hasConcurrent(h *tm.History, t *tm.TxnRecord) bool {
	for _, u := range h.Txns {
		if u != t && !h.PrecedesRT(t, u) && !h.PrecedesRT(u, t) {
			return true
		}
	}
	return false
}
