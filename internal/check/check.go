// Package check verifies recorded TM histories against the paper's
// correctness and progress definitions (Section 3): opacity, strict
// serializability, progressiveness, and the single-item case of strong
// progressiveness. The serializability checkers perform an exhaustive
// search over serialization orders respecting the real-time order, so they
// are oracles for small histories (tests keep them under ~10 transactions),
// not production validators.
package check

import (
	"sort"

	"repro/internal/tm"
)

// Result reports a checker outcome with the witnessing serialization (t-ids
// in serial order) when the property holds.
type Result struct {
	OK    bool
	Order []int // witness serialization, transaction IDs
}

// StrictlySerializable reports whether the history's committed transactions
// have a legal t-complete t-sequential serialization that respects the
// real-time order. Aborted and live transactions are ignored, per the
// definition (S is equivalent to cseq of a completion).
func StrictlySerializable(h *tm.History) Result {
	return serialize(h, false)
}

// Opaque reports whether *all* transactions — committed, aborted, and live
// (completed by aborting) — fit a single legal t-sequential serialization
// respecting real-time order, where aborted transactions observe consistent
// reads but their writes take no effect.
func Opaque(h *tm.History) Result {
	return serialize(h, true)
}

func serialize(h *tm.History, includeAborted bool) Result {
	var txns []*tm.TxnRecord
	for _, t := range h.Txns {
		if t.Status == tm.TxnCommitted || includeAborted {
			txns = append(txns, t)
		}
	}
	n := len(txns)
	if n == 0 {
		return Result{OK: true}
	}
	// pred[i] = indices that must precede i (real-time order).
	pred := make([][]int, n)
	for i, a := range txns {
		for j, b := range txns {
			if i != j && h.PrecedesRT(b, a) {
				pred[i] = append(pred[i], j)
			}
		}
	}
	placed := make([]bool, n)
	order := make([]int, 0, n)
	mem := map[int]tm.Value{}

	var dfs func(k int) bool
	dfs = func(k int) bool {
		if k == n {
			return true
		}
	next:
		for i := 0; i < n; i++ {
			if placed[i] {
				continue
			}
			for _, j := range pred[i] {
				if !placed[j] {
					continue next
				}
			}
			writes, ok := legal(txns[i], mem)
			if !ok {
				continue
			}
			placed[i] = true
			order = append(order, txns[i].ID)
			var saved map[int]tm.Value
			if txns[i].Status == tm.TxnCommitted && len(writes) > 0 {
				saved = make(map[int]tm.Value, len(writes))
				for x, v := range writes {
					if old, ok := mem[x]; ok {
						saved[x] = old
					} else {
						saved[x] = 0
					}
					mem[x] = v
				}
			}
			if dfs(k + 1) {
				return true
			}
			for x, v := range saved {
				mem[x] = v
			}
			placed[i] = false
			order = order[:k]
		}
		return false
	}
	if dfs(0) {
		return Result{OK: true, Order: append([]int(nil), order...)}
	}
	return Result{OK: false}
}

// legal simulates t in isolation against mem (initial values are 0) and
// reports the transaction's write set values plus whether every successful
// read returned the latest written value.
func legal(t *tm.TxnRecord, mem map[int]tm.Value) (map[int]tm.Value, bool) {
	var pending map[int]tm.Value
	for _, op := range t.Ops {
		switch op.Kind {
		case tm.OpRead:
			if op.Aborted {
				continue // a read returning A_k constrains nothing
			}
			want, ok := pending[op.Obj]
			if !ok {
				want = mem[op.Obj] // zero default matches initial value
			}
			if op.Value != want {
				return nil, false
			}
		case tm.OpWrite:
			if op.Aborted {
				continue
			}
			if pending == nil {
				pending = make(map[int]tm.Value)
			}
			pending[op.Obj] = op.Value
		}
	}
	return pending, true
}

// ProgressViolation describes an abort that progressiveness forbids: the
// aborted transaction had no concurrent conflicting transaction.
type ProgressViolation struct {
	Txn int // ID of the wrongly aborted transaction
}

// Progressive verifies the paper's progressiveness condition on a recorded
// history: every transaction that aborted must have a concurrent
// transaction conflicting with it on some t-object (both access X, at least
// one writes X). It returns all violations (empty means the history is
// consistent with a progressive TM).
func Progressive(h *tm.History) []ProgressViolation {
	var out []ProgressViolation
	for _, t := range h.Txns {
		if t.Status != tm.TxnAborted {
			continue
		}
		if !hasConcurrentConflict(h, t) {
			out = append(out, ProgressViolation{Txn: t.ID})
		}
	}
	return out
}

func hasConcurrentConflict(h *tm.History, t *tm.TxnRecord) bool {
	for _, u := range h.Txns {
		if u == t || h.PrecedesRT(t, u) || h.PrecedesRT(u, t) {
			continue // not concurrent
		}
		if conflict(t, u) {
			return true
		}
	}
	return false
}

// conflict reports whether a and b conflict: a common data-set t-object
// that is in the write set of at least one of them. Attempted accesses
// (including those in aborted operations) count toward the data set, since
// conflicts are what cause the aborts.
func conflict(a, b *tm.TxnRecord) bool {
	dset := func(t *tm.TxnRecord) (reads, writes map[int]bool) {
		reads, writes = map[int]bool{}, map[int]bool{}
		for _, op := range t.Ops {
			switch op.Kind {
			case tm.OpRead:
				reads[op.Obj] = true
			case tm.OpWrite:
				writes[op.Obj] = true
			}
		}
		return
	}
	ra, wa := dset(a)
	rb, wb := dset(b)
	for x := range wa {
		if rb[x] || wb[x] {
			return true
		}
	}
	for x := range wb {
		if ra[x] || wa[x] {
			return true
		}
	}
	return false
}

// StrongViolation describes a conflict group over at most one t-object in
// which every transaction aborted, violating strong progressiveness
// (Definition 1).
type StrongViolation struct {
	Txns []int // IDs of the all-aborted group
	Obj  int   // the single conflict object, or -1 if the group is conflict-free
}

// StronglyProgressive checks Definition 1 on the history: for every
// connected component Q of the conflict graph with |CObj(Q)| ≤ 1, some
// transaction in Q is not aborted. (Connected components are the minimal
// sets closed under conflict; any CTrans set is a union of components, so
// checking components suffices.)
func StronglyProgressive(h *tm.History) []StrongViolation {
	n := len(h.Txns)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	union := func(i, j int) { parent[find(i)] = find(j) }

	// cobj[i] collects the t-objects on which txn i conflicts with anyone.
	cobj := make([]map[int]bool, n)
	for i := range cobj {
		cobj[i] = map[int]bool{}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			objs := conflictObjs(h.Txns[i], h.Txns[j])
			if len(objs) > 0 {
				union(i, j)
				for _, x := range objs {
					cobj[i][x] = true
					cobj[j][x] = true
				}
			}
		}
	}
	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		groups[find(i)] = append(groups[find(i)], i)
	}
	var out []StrongViolation
	for _, members := range groups {
		objs := map[int]bool{}
		allAborted := true
		for _, i := range members {
			for x := range cobj[i] {
				objs[x] = true
			}
			if h.Txns[i].Status != tm.TxnAborted {
				allAborted = false
			}
		}
		if len(objs) <= 1 && allAborted && len(members) > 0 {
			hasAny := false
			for _, i := range members {
				if len(h.Txns[i].Ops) > 0 {
					hasAny = true
				}
			}
			if !hasAny {
				continue
			}
			v := StrongViolation{Obj: -1}
			for x := range objs {
				v.Obj = x
			}
			for _, i := range members {
				v.Txns = append(v.Txns, h.Txns[i].ID)
			}
			sort.Ints(v.Txns)
			out = append(out, v)
		}
	}
	return out
}

func conflictObjs(a, b *tm.TxnRecord) []int {
	dset := func(t *tm.TxnRecord) (reads, writes map[int]bool) {
		reads, writes = map[int]bool{}, map[int]bool{}
		for _, op := range t.Ops {
			switch op.Kind {
			case tm.OpRead:
				reads[op.Obj] = true
			case tm.OpWrite:
				writes[op.Obj] = true
			}
		}
		return
	}
	ra, wa := dset(a)
	rb, wb := dset(b)
	objs := map[int]bool{}
	for x := range wa {
		if rb[x] || wb[x] {
			objs[x] = true
		}
	}
	for x := range wb {
		if ra[x] || wa[x] {
			objs[x] = true
		}
	}
	out := make([]int, 0, len(objs))
	for x := range objs {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}
