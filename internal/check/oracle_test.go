package check_test

import (
	"testing"

	"repro/internal/check"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/tm/irtm"
	"repro/internal/tm/lockword"
)

// brokenTM wraps irtm but skips read validation entirely — the exact bug
// Theorem 3 says cannot be avoided for free. If the opacity checker is a
// real oracle, randomized concurrent runs must flag it.
type brokenTM struct {
	mem  *memory.Memory
	meta []*memory.Obj
	val  []*memory.Obj
}

func newBroken(mem *memory.Memory, nobj int) *brokenTM {
	return &brokenTM{
		mem:  mem,
		meta: mem.AllocArray("broken.meta", nobj),
		val:  mem.AllocArray("broken.val", nobj),
	}
}

func (t *brokenTM) Name() string    { return "broken" }
func (t *brokenTM) NumObjects() int { return len(t.meta) }
func (t *brokenTM) Props() tm.Props { return tm.Props{} }

type brokenTxn struct {
	t      *brokenTM
	p      *memory.Proc
	wvals  map[int]tm.Value
	worder []int
	done   bool
}

func (t *brokenTM) Begin(p *memory.Proc) tm.Txn { return &brokenTxn{t: t, p: p} }

func (tx *brokenTxn) Aborted() bool { return false }

// Read takes an unvalidated snapshot: no version check, no lock check, no
// revalidation of earlier reads.
func (tx *brokenTxn) Read(x int) (tm.Value, error) {
	if v, ok := tx.wvals[x]; ok {
		return v, nil
	}
	return tx.p.Read(tx.t.val[x]), nil
}

func (tx *brokenTxn) Write(x int, v tm.Value) error {
	if tx.wvals == nil {
		tx.wvals = make(map[int]tm.Value)
	}
	if _, ok := tx.wvals[x]; !ok {
		tx.worder = append(tx.worder, x)
	}
	tx.wvals[x] = v
	return nil
}

// Commit installs writes with no validation whatsoever.
func (tx *brokenTxn) Commit() error {
	for _, x := range tx.worder {
		m := tx.p.Read(tx.t.meta[x])
		tx.p.Write(tx.t.val[x], tx.wvals[x])
		tx.p.Write(tx.t.meta[x], lockword.Unlocked(lockword.Version(m)+1))
	}
	tx.done = true
	return nil
}

func (tx *brokenTxn) Abort() { tx.done = true }

// TestCheckerCatchesBrokenTM plants the no-validation TM in a contended
// workload and requires the serializability checker to reject at least one
// seed. If this test fails, the checkers are rubber stamps and every other
// "history is opaque" assertion in the suite is meaningless.
func TestCheckerCatchesBrokenTM(t *testing.T) {
	caught := false
	for seed := int64(1); seed <= 40 && !caught; seed++ {
		mem := memory.New(3, nil)
		rec := tm.Record(newBroken(mem, 2))
		s := sched.New(mem)
		for i := 0; i < 3; i++ {
			i := i
			s.Go(i, func(p *memory.Proc) {
				for n := 0; n < 2; n++ {
					tx := rec.Begin(p)
					// read-modify-write both objects: torn snapshots and
					// lost updates become visible to the checker.
					for x := 0; x < 2; x++ {
						v, _ := tx.Read(x)
						_ = tx.Write(x, v+uint64(10*(i+1)))
					}
					_ = tx.Commit()
				}
			})
		}
		if err := s.Run(sched.NewRandom(seed)); err != nil {
			t.Fatal(err)
		}
		if !check.StrictlySerializable(rec.History()).OK {
			caught = true
		}
	}
	if !caught {
		t.Fatal("no seed produced a non-serializable history from the validation-free TM; checker is not discriminating")
	}
}

// TestCorrectTMNeverCaught is the control: the same workload on irtm must
// always pass (otherwise the broken-TM test could be flagging the workload
// shape rather than the bug).
func TestCorrectTMNeverCaught(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		mem := memory.New(3, nil)
		rec := tm.Record(irtm.New(mem, 2))
		s := sched.New(mem)
		for i := 0; i < 3; i++ {
			i := i
			s.Go(i, func(p *memory.Proc) {
				for n := 0; n < 2; n++ {
					tx := rec.Begin(p)
					ok := true
					for x := 0; x < 2 && ok; x++ {
						v, err := tx.Read(x)
						if err != nil {
							ok = false
							break
						}
						if tx.Write(x, v+uint64(10*(i+1))) != nil {
							ok = false
						}
					}
					if ok {
						_ = tx.Commit()
					} else {
						tx.Abort()
					}
				}
			})
		}
		if err := s.Run(sched.NewRandom(seed)); err != nil {
			t.Fatal(err)
		}
		if !check.StrictlySerializable(rec.History()).OK {
			t.Fatalf("seed %d: irtm produced a non-serializable history:\n%s", seed, rec.History())
		}
	}
}
