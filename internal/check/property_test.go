package check_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/tm"
)

// genHistory builds a random small history from a seed: up to 4
// transactions over 2 t-objects with random interleaving, random reads
// (returning arbitrary small values, possibly illegal) and random
// completion statuses. The generator intentionally produces both legal and
// illegal histories so the metamorphic properties below are exercised on
// both sides.
func genHistory(seed int64) *tm.History {
	rng := rand.New(rand.NewSource(seed))
	var b hb
	ntxn := 2 + rng.Intn(3)
	live := make([]*txb, 0, ntxn)
	for i := 0; i < ntxn; i++ {
		live = append(live, b.txn(i%3))
	}
	// Interleave operations randomly.
	steps := 3 + rng.Intn(8)
	for s := 0; s < steps && len(live) > 0; s++ {
		t := live[rng.Intn(len(live))]
		switch rng.Intn(3) {
		case 0:
			t.read(rng.Intn(2), tm.Value(rng.Intn(3)))
		case 1:
			t.write(rng.Intn(2), tm.Value(1+rng.Intn(3)))
		case 2:
			if rng.Intn(2) == 0 {
				t.commit()
			} else {
				t.abort()
			}
			for i, u := range live {
				if u == t {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		}
	}
	for _, t := range live {
		if rand.New(rand.NewSource(seed^0x5f5f)).Intn(2) == 0 {
			t.commit()
		} else {
			t.abort()
		}
	}
	return &b.h
}

// TestOpacityImpliesStrictSerializability: opacity is the strictly
// stronger criterion — any history the opacity checker accepts must also
// pass strict serializability.
func TestOpacityImpliesStrictSerializability(t *testing.T) {
	prop := func(seed int64) bool {
		h := genHistory(seed % 100_000)
		if check.Opaque(h).OK {
			return check.StrictlySerializable(h).OK
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestAbortedTxnsIrrelevantToStrictSer: the strict-serializability verdict
// depends only on the committed transactions, so deleting aborted ones
// never changes it.
func TestAbortedTxnsIrrelevantToStrictSer(t *testing.T) {
	prop := func(seed int64) bool {
		h := genHistory(seed % 100_000)
		got := check.StrictlySerializable(h).OK
		var pruned tm.History
		for _, txn := range h.Txns {
			if txn.Status == tm.TxnCommitted {
				pruned.Txns = append(pruned.Txns, txn)
			}
		}
		return got == check.StrictlySerializable(&pruned).OK
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestWitnessOrderIsLegal: whenever a checker says OK, replaying its
// witness order sequentially must reproduce every committed read.
func TestWitnessOrderIsLegal(t *testing.T) {
	prop := func(seed int64) bool {
		h := genHistory(seed % 100_000)
		r := check.StrictlySerializable(h)
		if !r.OK {
			return true
		}
		byID := map[int]*tm.TxnRecord{}
		for _, txn := range h.Txns {
			byID[txn.ID] = txn
		}
		mem := map[int]tm.Value{}
		for _, id := range r.Order {
			txn := byID[id]
			pending := map[int]tm.Value{}
			for _, op := range txn.Ops {
				switch op.Kind {
				case tm.OpRead:
					if op.Aborted {
						continue
					}
					want, ok := pending[op.Obj]
					if !ok {
						want = mem[op.Obj]
					}
					if op.Value != want {
						return false // witness does not actually explain the history
					}
				case tm.OpWrite:
					if !op.Aborted {
						pending[op.Obj] = op.Value
					}
				}
			}
			if txn.Status == tm.TxnCommitted {
				for x, v := range pending {
					mem[x] = v
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestRTOrderAntisymmetry: PrecedesRT is a strict partial order on any
// generated history.
func TestRTOrderAntisymmetry(t *testing.T) {
	prop := func(seed int64) bool {
		h := genHistory(seed % 100_000)
		for _, a := range h.Txns {
			if h.PrecedesRT(a, a) {
				return false
			}
			for _, b := range h.Txns {
				if a != b && h.PrecedesRT(a, b) && h.PrecedesRT(b, a) {
					return false
				}
				for _, c := range h.Txns {
					if h.PrecedesRT(a, b) && h.PrecedesRT(b, c) && !h.PrecedesRT(a, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
