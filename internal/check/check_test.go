package check_test

import (
	"testing"

	"repro/internal/check"
	"repro/internal/tm"
)

// hb (history builder) assembles histories by hand for the checker tests.
type hb struct {
	h   tm.History
	seq int
}

func (b *hb) txn(proc int) *txb {
	rec := &tm.TxnRecord{ID: len(b.h.Txns), Proc: proc, StartSeq: b.seq, EndSeq: -1}
	b.seq++
	b.h.Txns = append(b.h.Txns, rec)
	return &txb{b: b, rec: rec}
}

type txb struct {
	b   *hb
	rec *tm.TxnRecord
}

func (t *txb) read(x int, v tm.Value) *txb {
	t.rec.Ops = append(t.rec.Ops, tm.Op{Seq: t.b.seq, Kind: tm.OpRead, Obj: x, Value: v})
	t.b.seq++
	return t
}

func (t *txb) write(x int, v tm.Value) *txb {
	t.rec.Ops = append(t.rec.Ops, tm.Op{Seq: t.b.seq, Kind: tm.OpWrite, Obj: x, Value: v})
	t.b.seq++
	return t
}

func (t *txb) commit() *txb {
	t.rec.Ops = append(t.rec.Ops, tm.Op{Seq: t.b.seq, Kind: tm.OpTryCommit})
	t.rec.EndSeq = t.b.seq
	t.rec.Status = tm.TxnCommitted
	t.b.seq++
	return t
}

func (t *txb) abort() *txb {
	t.rec.Ops = append(t.rec.Ops, tm.Op{Seq: t.b.seq, Kind: tm.OpAbort, Aborted: true})
	t.rec.EndSeq = t.b.seq
	t.rec.Status = tm.TxnAborted
	t.b.seq++
	return t
}

func TestSerializableSimple(t *testing.T) {
	var b hb
	b.txn(0).write(0, 1).commit()
	b.txn(1).read(0, 1).commit()
	if r := check.StrictlySerializable(&b.h); !r.OK {
		t.Fatal("sequential write-then-read must be strictly serializable")
	}
	if r := check.Opaque(&b.h); !r.OK {
		t.Fatal("sequential write-then-read must be opaque")
	}
}

func TestNonSerializableLostUpdate(t *testing.T) {
	// Two concurrent increments both read 0 and write 1; a third reads 2?
	// Simpler: T0 and T1 both read 0 then write conflicting values, and a
	// final reader contradicts every possible order.
	var b hb
	t0 := b.txn(0).read(0, 0)
	t1 := b.txn(1).read(0, 0)
	t0.write(0, 1).commit()
	t1.write(0, 2).commit()
	// Whichever commits second must overwrite; reading 1 then requires
	// order T1,T0 — but then T0's read(0)=0 is illegal after T1 wrote 2...
	// actually read(0)=0 forces each of T0,T1 to be first. Contradiction.
	b.txn(2).read(0, 3).commit() // 3 was never written: unserializable
	if r := check.StrictlySerializable(&b.h); r.OK {
		t.Fatal("history with a read of a never-written value passed")
	}
}

func TestRealTimeOrderRespected(t *testing.T) {
	// T0 commits writing 1 strictly before T1 starts; T1 reads 0. Legal
	// only by ordering T1 first, which real-time order forbids.
	var b hb
	b.txn(0).write(0, 1).commit()
	b.txn(1).read(0, 0).commit()
	if r := check.StrictlySerializable(&b.h); r.OK {
		t.Fatal("stale read after a real-time-ordered commit passed")
	}
}

func TestConcurrentEitherOrderOK(t *testing.T) {
	// T0 and T1 overlap; T1 reads the initial value. Serializing T1 before
	// T0 is allowed because they are concurrent.
	var b hb
	t0 := b.txn(0).write(0, 1)
	b.txn(1).read(0, 0).commit()
	t0.commit()
	if r := check.StrictlySerializable(&b.h); !r.OK {
		t.Fatal("concurrent stale read must be serializable (T1 before T0)")
	}
}

func TestOpacityCatchesInconsistentAbortedReads(t *testing.T) {
	// The aborted transaction saw X0=1 and X1=0, but X0=1 and X1=1 were
	// written atomically by T0: no serialization point yields that view.
	// Strict serializability (committed only) still holds.
	var b hb
	b.txn(0).write(0, 1).write(1, 1).commit()
	b.txn(1).read(0, 1).read(1, 0).abort()
	if r := check.StrictlySerializable(&b.h); !r.OK {
		t.Fatal("committed part must be strictly serializable")
	}
	if r := check.Opaque(&b.h); r.OK {
		t.Fatal("inconsistent aborted snapshot must violate opacity")
	}
}

func TestOpacityAcceptsConsistentAbortedReads(t *testing.T) {
	var b hb
	b.txn(0).write(0, 1).write(1, 1).commit()
	b.txn(1).read(0, 1).read(1, 1).abort()
	if r := check.Opaque(&b.h); !r.OK {
		t.Fatal("consistent aborted snapshot must be opaque")
	}
}

func TestAbortedWritesInvisible(t *testing.T) {
	var b hb
	b.txn(0).write(0, 42).abort()
	b.txn(1).read(0, 42).commit()
	if r := check.StrictlySerializable(&b.h); r.OK {
		t.Fatal("reading an aborted write must not be serializable")
	}
	var b2 hb
	b2.txn(0).write(0, 42).abort()
	b2.txn(1).read(0, 0).commit()
	if r := check.Opaque(&b2.h); !r.OK {
		t.Fatal("aborted write correctly invisible must be opaque")
	}
}

func TestReadYourOwnWritesLegality(t *testing.T) {
	var b hb
	b.txn(0).write(0, 5).read(0, 5).commit()
	if r := check.Opaque(&b.h); !r.OK {
		t.Fatal("read-your-own-write must be legal")
	}
	var b2 hb
	b2.txn(0).write(0, 5).read(0, 6).commit()
	if r := check.Opaque(&b2.h); r.OK {
		t.Fatal("reading a value other than the pending write must be illegal")
	}
}

func TestProgressiveChecker(t *testing.T) {
	// Abort with a concurrent conflicting writer: allowed.
	var b hb
	t0 := b.txn(0).read(0, 0)
	b.txn(1).write(0, 1).commit()
	t0.read(1, 0).abort()
	if v := check.Progressive(&b.h); len(v) != 0 {
		t.Fatalf("legitimate conflict abort flagged: %v", v)
	}
	// Abort with no conflict anywhere: violation.
	var b2 hb
	t0 = b2.txn(0).read(0, 0)
	b2.txn(1).write(1, 1).commit() // disjoint object
	t0.abort()
	if v := check.Progressive(&b2.h); len(v) != 1 {
		t.Fatalf("spurious abort not flagged, got %v", v)
	}
	// Abort with a conflicting but non-concurrent transaction: violation.
	var b3 hb
	b3.txn(0).write(0, 1).commit()
	b3.txn(1).read(0, 1).abort()
	if v := check.Progressive(&b3.h); len(v) != 1 {
		t.Fatalf("non-concurrent conflict abort not flagged, got %v", v)
	}
}

func TestStronglyProgressiveChecker(t *testing.T) {
	// Single-object group where everyone aborts: violation.
	var b hb
	t0 := b.txn(0).write(0, 1)
	t1 := b.txn(1).write(0, 2)
	t0.abort()
	t1.abort()
	if v := check.StronglyProgressive(&b.h); len(v) != 1 {
		t.Fatalf("all-aborted single-item group not flagged, got %+v", v)
	}
	// Same group with one winner: fine.
	var b2 hb
	t0 = b2.txn(0).write(0, 1)
	t1 = b2.txn(1).write(0, 2)
	t0.commit()
	t1.abort()
	if v := check.StronglyProgressive(&b2.h); len(v) != 0 {
		t.Fatalf("winner group flagged: %+v", v)
	}
	// Two-object conflict group, all aborted: Definition 1 does not apply.
	var b3 hb
	t0 = b3.txn(0).write(0, 1).write(1, 1)
	t1 = b3.txn(1).write(0, 2).write(1, 2)
	t0.abort()
	t1.abort()
	if v := check.StronglyProgressive(&b3.h); len(v) != 0 {
		t.Fatalf("multi-object group flagged: %+v", v)
	}
}

func TestWitnessOrderIsReturned(t *testing.T) {
	var b hb
	b.txn(0).write(0, 1).commit()
	b.txn(1).read(0, 1).write(0, 2).commit()
	b.txn(2).read(0, 2).commit()
	r := check.StrictlySerializable(&b.h)
	if !r.OK {
		t.Fatal("chain history must serialize")
	}
	want := []int{0, 1, 2}
	for i := range want {
		if r.Order[i] != want[i] {
			t.Fatalf("witness order %v, want %v", r.Order, want)
		}
	}
}

// TestOpacityWithLiveTransaction: opacity must account for t-incomplete
// transactions by completing them with aborts — their reads still need a
// consistent view, and their writes must stay invisible.
func TestOpacityWithLiveTransaction(t *testing.T) {
	var b hb
	b.txn(0).write(0, 1).write(1, 1).commit()
	live := b.txn(1).read(0, 1) // t-incomplete: no commit/abort event
	_ = live
	if r := check.Opaque(&b.h); !r.OK {
		t.Fatal("consistent live read must be opaque")
	}
	var b2 hb
	b2.txn(0).write(0, 1).write(1, 1).commit()
	b2.txn(1).read(0, 1).read(1, 0) // inconsistent live snapshot
	if r := check.Opaque(&b2.h); r.OK {
		t.Fatal("torn live snapshot must violate opacity")
	}
	// A live transaction's writes are invisible to committed readers.
	var b3 hb
	b3.txn(0).write(0, 9) // never commits
	b3.txn(1).read(0, 9).commit()
	if r := check.StrictlySerializable(&b3.h); r.OK {
		t.Fatal("reading a live transaction's write must not serialize")
	}
}
