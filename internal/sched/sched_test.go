package sched_test

import (
	"errors"
	"testing"

	"repro/internal/memory"
	"repro/internal/sched"
)

// TestMutualExclusionOfSteps verifies the core scheduler guarantee: between
// two yield points of one process, no other process takes a step — i.e. a
// read-modify-write written as read+write with no interleaving hazard
// *does* race, while one granted primitive is atomic.
func TestSingleStepGranularity(t *testing.T) {
	mem := memory.New(2, nil)
	o := mem.Alloc("counter")
	s := sched.New(mem)
	const rounds = 100
	for i := 0; i < 2; i++ {
		s.Go(i, func(p *memory.Proc) {
			for j := 0; j < rounds; j++ {
				p.FetchAdd(o, 1) // atomic primitive: no lost updates
			}
		})
	}
	if err := s.Run(sched.NewRandom(42)); err != nil {
		t.Fatal(err)
	}
	if got := mem.Peek(o); got != 2*rounds {
		t.Fatalf("counter = %d, want %d", got, 2*rounds)
	}
}

// TestRacyIncrementLosesUpdates is the sanity complement: a naive
// read-then-write counter must lose updates under the random scheduler,
// proving that interleaving actually happens at primitive granularity.
func TestRacyIncrementLosesUpdates(t *testing.T) {
	mem := memory.New(4, nil)
	o := mem.Alloc("counter")
	s := sched.New(mem)
	const rounds = 50
	for i := 0; i < 4; i++ {
		s.Go(i, func(p *memory.Proc) {
			for j := 0; j < rounds; j++ {
				v := p.Read(o)
				p.Write(o, v+1)
			}
		})
	}
	if err := s.Run(sched.NewRandom(7)); err != nil {
		t.Fatal(err)
	}
	if got := mem.Peek(o); got == 4*rounds {
		t.Fatal("racy counter lost no updates; scheduler is not interleaving")
	}
}

// TestDeterminism verifies that the same seed reproduces the same
// execution, step for step.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []uint64 {
		mem := memory.New(3, nil)
		o := mem.Alloc("x")
		s := sched.New(mem)
		for i := 0; i < 3; i++ {
			i := i
			s.Go(i, func(p *memory.Proc) {
				for j := 0; j < 20; j++ {
					p.FetchAdd(o, uint64(i+1))
				}
			})
		}
		if err := s.Run(sched.NewRandom(seed)); err != nil {
			t.Fatal(err)
		}
		return []uint64{mem.Peek(o), mem.Proc(0).Steps(), mem.Proc(1).Steps(), mem.Proc(2).Steps()}
	}
	a, b := run(99), run(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

// TestRoundRobinFairness verifies the round-robin policy grants steps in
// strict rotation.
func TestRoundRobinFairness(t *testing.T) {
	mem := memory.New(3, nil)
	o := mem.Alloc("trace")
	var order []int
	s := sched.New(mem)
	for i := 0; i < 3; i++ {
		i := i
		s.Go(i, func(p *memory.Proc) {
			for j := 0; j < 4; j++ {
				p.Read(o)
				order = append(order, i) // single-threaded by construction
			}
		})
	}
	if err := s.Run(&sched.RoundRobin{}); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("round-robin order %v, want %v", order, want)
		}
	}
}

// TestStepLimit verifies livelock detection: a spin loop that can never be
// satisfied trips ErrStepLimit rather than hanging.
func TestStepLimit(t *testing.T) {
	mem := memory.New(1, nil)
	o := mem.Alloc("never")
	s := sched.New(mem)
	s.StepLimit = 1000
	s.Go(0, func(p *memory.Proc) {
		for p.Read(o) == 0 {
		}
	})
	err := s.Run(&sched.RoundRobin{})
	if !errors.Is(err, sched.ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

// TestPanicPropagation verifies that a panicking task surfaces as an error
// and does not wedge the scheduler or leak goroutines.
func TestPanicPropagation(t *testing.T) {
	mem := memory.New(2, nil)
	o := mem.Alloc("x")
	s := sched.New(mem)
	s.Go(0, func(p *memory.Proc) {
		p.Read(o)
		panic("boom")
	})
	s.Go(1, func(p *memory.Proc) {
		for j := 0; j < 10; j++ {
			p.Read(o)
		}
	})
	if err := s.Run(sched.NewRandom(1)); err == nil {
		t.Fatal("panicking task did not produce an error")
	}
}

// TestBurstPolicy runs a workload under the burst policy to cover it; the
// result must match the atomic-counter invariant regardless of policy.
func TestBurstPolicy(t *testing.T) {
	mem := memory.New(3, nil)
	o := mem.Alloc("counter")
	s := sched.New(mem)
	for i := 0; i < 3; i++ {
		s.Go(i, func(p *memory.Proc) {
			for j := 0; j < 30; j++ {
				p.FetchAdd(o, 1)
			}
		})
	}
	if err := s.Run(sched.NewBurst(5, 8)); err != nil {
		t.Fatal(err)
	}
	if got := mem.Peek(o); got != 90 {
		t.Fatalf("counter = %d, want 90", got)
	}
}

// TestSchedulerReuse verifies a scheduler can run successive batches.
func TestSchedulerReuse(t *testing.T) {
	mem := memory.New(2, nil)
	o := mem.Alloc("x")
	s := sched.New(mem)
	for round := 0; round < 3; round++ {
		for i := 0; i < 2; i++ {
			s.Go(i, func(p *memory.Proc) { p.FetchAdd(o, 1) })
		}
		if err := s.Run(&sched.RoundRobin{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := mem.Peek(o); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
}
