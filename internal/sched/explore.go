package sched

import (
	"errors"
	"fmt"
)

// This file implements systematic schedule exploration: a stateless
// model checker over the cooperative scheduler. Because an execution is
// fully determined by its sequence of scheduling choices, re-running a
// program under controlled choice sequences enumerates interleavings; a
// preemption bound (à la CHESS) keeps the space tractable while covering
// the interleavings that expose almost all concurrency bugs.
//
// Explore is what lets the repository claim more than "tested under random
// seeds": for small instances (two or three processes, a handful of steps)
// the mutual-exclusion and opacity theorems are checked against *every*
// schedule within the bound.

// ExploreOpts bounds a systematic exploration.
type ExploreOpts struct {
	// MaxPreemptions bounds context switches at points where the previous
	// task could have continued (switches at a task's completion are free).
	MaxPreemptions int
	// MaxRuns caps the number of executions (0 = 100 000).
	MaxRuns int
	// StepLimit per run (0 = 5 000). Runs that exceed it — spin loops
	// starved by the unfair run-to-completion default — are pruned, not
	// reported: a blocking algorithm's liveness is conditional on fair
	// scheduling, which bounded exploration deliberately violates.
	StepLimit uint64
}

// ExploreResult summarizes an exploration.
type ExploreResult struct {
	Runs      int
	Truncated int  // runs pruned at the step limit
	Exhausted bool // the whole bounded space was covered
}

// ErrExplore wraps a property failure with the schedule that produced it.
type ErrExplore struct {
	Schedule []int
	Err      error
}

// Error implements error.
func (e *ErrExplore) Error() string {
	return fmt.Sprintf("sched: property failed under schedule %v: %v", e.Schedule, e.Err)
}

// Unwrap exposes the property error.
func (e *ErrExplore) Unwrap() error { return e.Err }

// Runner abstracts the deterministic system Explore drives: the
// cooperative Scheduler over simulated memory here, and the native-engine
// interleaving harness (internal/schedtest.Harness), which exposes the
// same grant/park protocol at engine sync points. A Runner must be a pure
// function of its Policy's choices — same picks, same runnable sets —
// or exploration prefixes diverge.
type Runner interface {
	// SetStepLimit bounds the next Run's granted steps; exceeding it must
	// surface as an error wrapping ErrStepLimit.
	SetStepLimit(uint64)
	// Run executes the registered tasks to completion under the policy.
	Run(Policy) error
}

// Explore systematically runs the program under all schedules with at most
// opts.MaxPreemptions preemptions (or until MaxRuns). build must construct
// a *fresh* system under test — memory, algorithm instances, scheduler
// with its tasks — and return the scheduler plus a property check to run
// after the execution. Explore returns the first property violation as an
// *ErrExplore carrying the offending schedule.
func Explore(build func() (*Scheduler, func() error), opts ExploreOpts) (ExploreResult, error) {
	return ExploreRunner(func() (Runner, func() error) { return build() }, opts)
}

// ExploreRunner is Explore generalized over any Runner, so the same
// preemption-bounded enumeration that model-checks the simulated
// algorithms can drive the native engines through internal/schedtest.
func ExploreRunner(build func() (Runner, func() error), opts ExploreOpts) (ExploreResult, error) {
	maxRuns := opts.MaxRuns
	if maxRuns == 0 {
		maxRuns = 100_000
	}
	stepLimit := opts.StepLimit
	if stepLimit == 0 {
		stepLimit = 5_000
	}
	type frontier struct {
		prefix []int
	}
	stack := []frontier{{prefix: nil}}
	res := ExploreResult{}
	for len(stack) > 0 {
		if res.Runs >= maxRuns {
			return res, nil // bounded space not exhausted; no violation found
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Runs++

		r, checkFn := build()
		r.SetStepLimit(stepLimit)
		g := &guided{prefix: f.prefix}
		if err := r.Run(g); err != nil {
			if errors.Is(err, ErrStepLimit) {
				res.Truncated++
				continue // starved spin loop under an unfair schedule: prune
			}
			return res, &ErrExplore{Schedule: g.chosen, Err: err}
		}
		if err := checkFn(); err != nil {
			return res, &ErrExplore{Schedule: g.chosen, Err: err}
		}

		// Branch: at every decision point at or beyond the prefix, try each
		// untaken runnable alternative, provided the preemption budget
		// allows it. Positions before len(prefix) were branched by
		// ancestors.
		for i := len(g.chosen) - 1; i >= len(f.prefix); i-- {
			for _, alt := range g.runnable[i] {
				if alt == g.chosen[i] {
					continue
				}
				// Count preemptions along prefix g.chosen[:i] + [alt].
				if preemptions(g.chosen, g.runnable, i, alt) > opts.MaxPreemptions {
					continue
				}
				prefix := make([]int, i+1)
				copy(prefix, g.chosen[:i])
				prefix[i] = alt
				stack = append(stack, frontier{prefix: prefix})
			}
		}
	}
	res.Exhausted = true
	return res, nil
}

// preemptions counts the preemptive switches in chosen[:i] followed by alt
// at position i: a switch is preemptive when the previously running task
// was still runnable.
func preemptions(chosen []int, runnable [][]int, i int, alt int) int {
	count := 0
	prev := -1
	at := func(pos, pick int) {
		if prev != -1 && pick != prev && contains(runnable[pos], prev) {
			count++
		}
		prev = pick
	}
	for pos := 0; pos < i; pos++ {
		at(pos, chosen[pos])
	}
	at(i, alt)
	return count
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// guided is the exploration policy: follow the prefix, then default to
// staying on the current task (fewest preemptions), recording every
// decision point.
type guided struct {
	prefix   []int
	chosen   []int
	runnable [][]int
	last     int
}

// Name implements Policy.
func (*guided) Name() string { return "guided" }

// Pick implements Policy.
func (g *guided) Pick(runnable []int, step uint64) int {
	snapshot := append([]int(nil), runnable...)
	g.runnable = append(g.runnable, snapshot)
	var pick int
	switch {
	case len(g.chosen) < len(g.prefix):
		pick = g.prefix[len(g.chosen)]
		if !contains(runnable, pick) {
			// Determinism guarantees the prefix stays feasible; reaching
			// this means the program under test is not a pure function of
			// the schedule.
			panic(fmt.Sprintf("sched: exploration prefix diverged at step %d: task %d not runnable in %v", len(g.chosen), pick, runnable))
		}
	case len(g.chosen) > 0 && contains(runnable, g.last):
		pick = g.last // run-to-completion default
	default:
		pick = runnable[0]
	}
	g.chosen = append(g.chosen, pick)
	g.last = pick
	return pick
}
