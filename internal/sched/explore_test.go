package sched_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/memory"
	"repro/internal/sched"
)

// brokenEnter is the classic test-then-set mistake: the read and the write
// are separate primitives, so two processes can both observe 0 and both
// enter. The explorer must find the interleaving.
func brokenEnter(p *memory.Proc, flag *memory.Obj) {
	for {
		if p.Read(flag) == 0 {
			p.Write(flag, 1)
			return
		}
	}
}

func TestExploreFindsTestThenSetBug(t *testing.T) {
	build := func() (*sched.Scheduler, func() error) {
		mem := memory.New(2, nil)
		flag := mem.Alloc("flag")
		inCS := 0
		violated := false
		s := sched.New(mem)
		for i := 0; i < 2; i++ {
			s.Go(i, func(p *memory.Proc) {
				brokenEnter(p, flag)
				inCS++
				if inCS > 1 {
					violated = true
				}
				p.Read(flag) // an interleaving point inside the CS
				inCS--
				p.Write(flag, 0)
			})
		}
		return s, func() error {
			if violated {
				return errors.New("two processes in the critical section")
			}
			return nil
		}
	}
	// The race needs two preemptions: leave p0 between its read and write,
	// let p1 read-write and enter the CS, then return to p0 mid-CS.
	res, err := sched.Explore(build, sched.ExploreOpts{MaxPreemptions: 2, MaxRuns: 20_000})
	if err == nil {
		t.Fatalf("explorer missed the test-then-set race after %d runs", res.Runs)
	}
	var ee *sched.ErrExplore
	if !errors.As(err, &ee) {
		t.Fatalf("error %v is not an ErrExplore", err)
	}
	if len(ee.Schedule) == 0 {
		t.Fatal("counterexample schedule is empty")
	}
	t.Logf("found in %d runs, schedule %v", res.Runs, ee.Schedule)
}

// TestExploreCounterexampleReplays verifies that the schedule returned in
// the counterexample deterministically reproduces the violation.
func TestExploreCounterexampleReplays(t *testing.T) {
	run := func(prefix []int) bool {
		mem := memory.New(2, nil)
		flag := mem.Alloc("flag")
		inCS, violated := 0, false
		s := sched.New(mem)
		for i := 0; i < 2; i++ {
			s.Go(i, func(p *memory.Proc) {
				brokenEnter(p, flag)
				inCS++
				if inCS > 1 {
					violated = true
				}
				p.Read(flag)
				inCS--
				p.Write(flag, 0)
			})
		}
		pol := sched.NewReplay(prefix)
		if err := s.Run(pol); err != nil {
			t.Fatal(err)
		}
		return violated
	}
	// First find the bug.
	var schedule []int
	build := func() (*sched.Scheduler, func() error) {
		mem := memory.New(2, nil)
		flag := mem.Alloc("flag")
		inCS, violated := 0, false
		s := sched.New(mem)
		for i := 0; i < 2; i++ {
			s.Go(i, func(p *memory.Proc) {
				brokenEnter(p, flag)
				inCS++
				if inCS > 1 {
					violated = true
				}
				p.Read(flag)
				inCS--
				p.Write(flag, 0)
			})
		}
		return s, func() error {
			if violated {
				return errors.New("violation")
			}
			return nil
		}
	}
	_, err := sched.Explore(build, sched.ExploreOpts{MaxPreemptions: 2, MaxRuns: 20_000})
	var ee *sched.ErrExplore
	if !errors.As(err, &ee) {
		t.Fatalf("no counterexample: %v", err)
	}
	schedule = ee.Schedule
	if !run(schedule) {
		t.Fatalf("schedule %v did not reproduce the violation", schedule)
	}
}

// TestExploreExhaustsCorrectLock verifies the flip side: a correct CAS
// lock admits no violating schedule within the bound, and the explorer
// covers the whole bounded space.
func TestExploreExhaustsCorrectLock(t *testing.T) {
	build := func() (*sched.Scheduler, func() error) {
		mem := memory.New(2, nil)
		lock := mem.Alloc("lock")
		inCS, violated := 0, false
		s := sched.New(mem)
		for i := 0; i < 2; i++ {
			s.Go(i, func(p *memory.Proc) {
				for !p.CAS(lock, 0, uint64(p.ID())+1) {
				}
				inCS++
				if inCS > 1 {
					violated = true
				}
				p.Read(lock)
				inCS--
				p.Write(lock, 0)
			})
		}
		return s, func() error {
			if violated {
				return errors.New("two processes in the critical section")
			}
			return nil
		}
	}
	res, err := sched.Explore(build, sched.ExploreOpts{MaxPreemptions: 2, MaxRuns: 50_000})
	if err != nil {
		t.Fatalf("correct lock flagged: %v", err)
	}
	if !res.Exhausted {
		t.Fatalf("bounded space not exhausted in %d runs", res.Runs)
	}
	if res.Runs < 3 {
		t.Fatalf("suspiciously few runs (%d); exploration is not branching", res.Runs)
	}
	t.Logf("exhausted in %d runs", res.Runs)
}

// TestExploreRespectsPreemptionBound: with a zero budget, only
// run-to-completion schedules are explored (one per initial task choice
// modulo completion switches).
func TestExploreRespectsPreemptionBound(t *testing.T) {
	var runs int
	build := func() (*sched.Scheduler, func() error) {
		runs++
		mem := memory.New(2, nil)
		o := mem.Alloc("x")
		s := sched.New(mem)
		for i := 0; i < 2; i++ {
			s.Go(i, func(p *memory.Proc) {
				for j := 0; j < 5; j++ {
					p.FetchAdd(o, 1)
				}
			})
		}
		return s, func() error { return nil }
	}
	res, err := sched.Explore(build, sched.ExploreOpts{MaxPreemptions: 0, MaxRuns: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatal("tiny space not exhausted")
	}
	if res.Runs > 4 {
		t.Fatalf("%d runs with zero preemptions; expected at most a handful", res.Runs)
	}
}

func ExampleExplore() {
	build := func() (*sched.Scheduler, func() error) {
		mem := memory.New(2, nil)
		o := mem.Alloc("counter")
		s := sched.New(mem)
		for i := 0; i < 2; i++ {
			s.Go(i, func(p *memory.Proc) {
				v := p.Read(o)
				p.Write(o, v+1)
			})
		}
		return s, func() error {
			if got := mem.Peek(o); got != 2 {
				return fmt.Errorf("lost update: counter = %d", got)
			}
			return nil
		}
	}
	_, err := sched.Explore(build, sched.ExploreOpts{MaxPreemptions: 1, MaxRuns: 100})
	fmt.Println(errors.As(err, new(*sched.ErrExplore)))
	// Output: true
}
