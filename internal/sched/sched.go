// Package sched provides a deterministic cooperative scheduler over the
// simulated shared memory. Each scheduled process runs in its own goroutine
// but yields to the scheduler before every primitive application, so exactly
// one process takes steps at any time and an execution is fully determined
// by the scheduling policy (and its seed). This is how the concurrent
// executions of Section 5 — spinning mutex acquirers — are produced and
// replayed.
package sched

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/memory"
)

// ErrStepLimit is returned by Run when the execution exceeds the configured
// step budget, which in a cooperative system indicates livelock (e.g. a spin
// loop whose release never gets scheduled under an unfair policy).
var ErrStepLimit = errors.New("sched: step limit exceeded")

// Policy chooses the next process to take a step. runnable lists the indices
// of parked, unfinished tasks in spawn order; step is the number of steps
// granted so far.
type Policy interface {
	Name() string
	Pick(runnable []int, step uint64) int
}

// RoundRobin cycles fairly through runnable processes, starting from the
// lowest task index. The zero value is ready to use.
type RoundRobin struct {
	last    int
	started bool
}

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (rr *RoundRobin) Pick(runnable []int, step uint64) int {
	if !rr.started {
		rr.started = true
		rr.last = -1
	}
	// Choose the smallest task index strictly greater than last, wrapping.
	best, wrap := -1, -1
	for _, id := range runnable {
		if id > rr.last && (best == -1 || id < best) {
			best = id
		}
		if wrap == -1 || id < wrap {
			wrap = id
		}
	}
	if best == -1 {
		best = wrap
	}
	rr.last = best
	return best
}

// Random picks uniformly with a fixed seed, so adversarial interleavings
// found by stress tests are replayable.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a seeded random policy.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (*Random) Name() string { return "random" }

// Pick implements Policy.
func (r *Random) Pick(runnable []int, step uint64) int {
	return runnable[r.rng.Intn(len(runnable))]
}

// Burst runs each process for a random-length burst of steps before
// switching, with a fixed seed. Long bursts approximate step
// contention-free fragments; short bursts maximize interleaving.
type Burst struct {
	rng      *rand.Rand
	maxBurst int
	cur      int
	left     int
}

// NewBurst returns a seeded burst policy with bursts of 1..maxBurst steps.
func NewBurst(seed int64, maxBurst int) *Burst {
	if maxBurst < 1 {
		maxBurst = 1
	}
	return &Burst{rng: rand.New(rand.NewSource(seed)), maxBurst: maxBurst, cur: -1}
}

// Name implements Policy.
func (*Burst) Name() string { return "burst" }

// Pick implements Policy.
func (b *Burst) Pick(runnable []int, step uint64) int {
	if b.left > 0 {
		for _, id := range runnable {
			if id == b.cur {
				b.left--
				return id
			}
		}
	}
	b.cur = runnable[b.rng.Intn(len(runnable))]
	b.left = b.rng.Intn(b.maxBurst)
	return b.cur
}

// Replay replays an explicit schedule — typically a counterexample from
// Explore — then defaults to run-to-completion once the trace is
// exhausted or infeasible.
type Replay struct {
	trace []int
	pos   int
	last  int
	begun bool
}

// NewReplay returns a policy replaying the given task-id trace.
func NewReplay(trace []int) *Replay {
	return &Replay{trace: append([]int(nil), trace...)}
}

// Name implements Policy.
func (*Replay) Name() string { return "replay" }

// Pick implements Policy.
func (r *Replay) Pick(runnable []int, step uint64) int {
	if r.pos < len(r.trace) && contains(runnable, r.trace[r.pos]) {
		r.last = r.trace[r.pos]
		r.pos++
		r.begun = true
		return r.last
	}
	r.pos = len(r.trace)
	if r.begun && contains(runnable, r.last) {
		return r.last
	}
	r.begun = true
	r.last = runnable[0]
	return r.last
}

type task struct {
	id     int
	proc   *memory.Proc
	fn     func(*memory.Proc)
	grant  chan struct{}
	parked chan struct{}
	done   chan struct{}
	panicv any
}

// killSentinel is panicked out of a task's next primitive when the
// scheduler tears an execution down (step limit, sibling panic). Tasks in
// unbounded spin loops would otherwise never terminate once unscheduled.
type killSentinel struct{}

// kill unblocks a parked task and forces it to unwind at its next yield
// point, then waits for it to finish.
func kill(t *task) {
	t.proc.SetYield(func() { panic(killSentinel{}) })
	close(t.grant)
	<-t.done
}

// Scheduler coordinates a set of cooperatively scheduled processes.
type Scheduler struct {
	mem       *memory.Memory
	tasks     []*task
	StepLimit uint64 // 0 means the default of 50 million granted steps
}

// New creates a scheduler over mem.
func New(mem *memory.Memory) *Scheduler {
	return &Scheduler{mem: mem}
}

// SetStepLimit sets the step budget for the next Run (0 restores the
// default). It satisfies the Runner interface Explore is generic over.
func (s *Scheduler) SetStepLimit(n uint64) { s.StepLimit = n }

// Go registers fn to run as process proc. Each memory process may be
// registered at most once per Run.
func (s *Scheduler) Go(proc int, fn func(*memory.Proc)) {
	p := s.mem.Proc(proc)
	s.tasks = append(s.tasks, &task{
		id:     len(s.tasks),
		proc:   p,
		fn:     fn,
		grant:  make(chan struct{}),
		parked: make(chan struct{}),
		done:   make(chan struct{}),
	})
}

// Run executes all registered tasks to completion under the policy. It
// returns ErrStepLimit on livelock and re-panics task panics as errors.
// After Run returns, the yield hooks are cleared and the task list reset,
// so the scheduler can be reused.
func (s *Scheduler) Run(policy Policy) error {
	tasks := s.tasks
	s.tasks = nil
	if len(tasks) == 0 {
		return nil
	}
	limit := s.StepLimit
	if limit == 0 {
		limit = 50_000_000
	}
	for _, t := range tasks {
		t := t
		t.proc.SetYield(func() {
			t.parked <- struct{}{}
			<-t.grant
		})
		go func() {
			defer func() {
				t.panicv = recover()
				close(t.done)
			}()
			// Park once before running so that no user code executes
			// until the scheduler grants the first step.
			t.parked <- struct{}{}
			<-t.grant
			t.fn(t.proc)
		}()
	}
	defer func() {
		for _, t := range tasks {
			t.proc.SetYield(nil)
		}
	}()

	finished := 0
	parked := make([]bool, len(tasks))
	for _, t := range tasks {
		<-t.parked
		parked[t.id] = true
	}
	var steps uint64
	runnable := make([]int, 0, len(tasks))
	for finished < len(tasks) {
		if steps >= limit {
			// Kill every parked task so goroutines do not leak.
			for _, t := range tasks {
				if parked[t.id] {
					kill(t)
				}
			}
			return fmt.Errorf("%w (limit %d, policy %s)", ErrStepLimit, limit, policy.Name())
		}
		runnable = runnable[:0]
		for _, t := range tasks {
			if parked[t.id] {
				runnable = append(runnable, t.id)
			}
		}
		if len(runnable) == 0 {
			return errors.New("sched: no runnable task (internal error)")
		}
		pick := policy.Pick(runnable, steps)
		t := tasks[pick]
		if !parked[pick] {
			return fmt.Errorf("sched: policy %s picked non-runnable task %d", policy.Name(), pick)
		}
		parked[pick] = false
		steps++
		t.grant <- struct{}{}
		select {
		case <-t.parked:
			parked[pick] = true
		case <-t.done:
			finished++
			if t.panicv != nil {
				// Kill the remaining tasks before reporting.
				for _, u := range tasks {
					if u != t && parked[u.id] {
						kill(u)
					}
				}
				return fmt.Errorf("sched: task %d (proc %d) panicked: %v", t.id, t.proc.ID(), t.panicv)
			}
		}
	}
	return nil
}
