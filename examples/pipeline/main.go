// pipeline: composable transactional blocking. A bounded stm.Queue feeds
// worker goroutines that atomically (take job + record result + update
// stats) in a single transaction — the composition of blocking operations
// with state updates that the paper's introduction argues lock-based code
// cannot express without breaking abstraction.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/stm"
)

func main() {
	const (
		jobs    = 500
		workers = 4
	)
	queue := stm.NewQueue[int](8)
	results := stm.NewMap[int](32)
	processed := stm.NewVar(0)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var job int
				done := false
				// One atomic step: take a job (blocking while the queue is
				// empty), bump the counter, and record the result. Either
				// all of it happens or none; an observer can never see a
				// taken-but-unrecorded job.
				err := stm.Atomically(func(tx *stm.Tx) error {
					if processed.Get(tx) == jobs {
						done = true
						return nil
					}
					if q, ok := queue.TryTake(tx); ok {
						job = q
						processed.Set(tx, processed.Get(tx)+1)
						results.Put(tx, fmt.Sprintf("job%d", job), job*job)
						return nil
					}
					tx.Retry() // sleep until a producer commits a Put
					return nil
				})
				if err != nil {
					log.Fatal(err)
				}
				if done {
					return
				}
			}
		}()
	}

	// Single producer: blocking Put exercises the full/empty handoff.
	for j := 0; j < jobs; j++ {
		if err := stm.Atomically(func(tx *stm.Tx) error {
			queue.Put(tx, j)
			return nil
		}); err != nil {
			log.Fatal(err)
		}
	}
	wg.Wait()

	// Verify: every job present, squared, exactly once.
	var count int
	err := stm.Atomically(func(tx *stm.Tx) error {
		count = results.Len(tx)
		for j := 0; j < jobs; j++ {
			v, ok := results.Get(tx, fmt.Sprintf("job%d", j))
			if !ok || v != j*j {
				return fmt.Errorf("job %d: got %d,%v", j, v, ok)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d jobs processed by %d workers; %d results, all correct\n", jobs, workers, count)
}
