// intset: a concurrent sorted linked-list set built from transactional
// variables — the classic STM data-structure workload (the kind of
// composable structure the paper's introduction motivates: no hand-over-
// hand locking, just sequential list code inside transactions).
//
// Run with: go run ./examples/intset
//
// Several goroutines run a mixed insert/remove/contains workload; the
// program then verifies the set against a sequential model built from the
// same operation log.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"repro/stm"
)

// node is a list cell. Key is immutable; next is transactional.
type node struct {
	key  int
	next *stm.Var[*node]
}

// Set is a sorted singly-linked integer set with transactional operations.
type Set struct {
	head *stm.Var[*node] // first real node (list is sorted ascending)
}

// NewSet returns an empty set.
func NewSet() *Set {
	return &Set{head: stm.NewVar[*node](nil)}
}

// locate returns the vars around key: prev points at the first node with
// key ≥ target (or nil), cur is that node.
func (s *Set) locate(tx *stm.Tx, key int) (prev *stm.Var[*node], cur *node) {
	prev = s.head
	cur = prev.Get(tx)
	for cur != nil && cur.key < key {
		prev = cur.next
		cur = prev.Get(tx)
	}
	return prev, cur
}

// Insert adds key, reporting whether it was absent.
func (s *Set) Insert(key int) bool {
	var added bool
	must(stm.Atomically(func(tx *stm.Tx) error {
		prev, cur := s.locate(tx, key)
		if cur != nil && cur.key == key {
			added = false
			return nil
		}
		prev.Set(tx, &node{key: key, next: stm.NewVar(cur)})
		added = true
		return nil
	}))
	return added
}

// Remove deletes key, reporting whether it was present.
func (s *Set) Remove(key int) bool {
	var removed bool
	must(stm.Atomically(func(tx *stm.Tx) error {
		prev, cur := s.locate(tx, key)
		if cur == nil || cur.key != key {
			removed = false
			return nil
		}
		prev.Set(tx, cur.next.Get(tx))
		removed = true
		return nil
	}))
	return removed
}

// Contains reports whether key is present.
func (s *Set) Contains(key int) bool {
	var found bool
	must(stm.Atomically(func(tx *stm.Tx) error {
		_, cur := s.locate(tx, key)
		found = cur != nil && cur.key == key
		return nil
	}))
	return found
}

// Snapshot returns the sorted contents in one consistent transaction.
func (s *Set) Snapshot() []int {
	var out []int
	must(stm.Atomically(func(tx *stm.Tx) error {
		out = out[:0]
		for cur := s.head.Get(tx); cur != nil; cur = cur.next.Get(tx) {
			out = append(out, cur.key)
		}
		return nil
	}))
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

type op struct {
	insert bool
	key    int
}

func main() {
	const (
		workers = 6
		opsEach = 3_000
		keys    = 200
	)
	set := NewSet()
	logs := make([][]op, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := uint64(w+1) * 0x9e3779b97f4a7c15
			next := func(n int) int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int(rng>>33) % n
			}
			for i := 0; i < opsEach; i++ {
				k := next(keys)
				switch next(10) {
				case 0, 1, 2, 3: // 40% insert
					if set.Insert(k) {
						logs[w] = append(logs[w], op{insert: true, key: k})
					}
				case 4, 5: // 20% remove
					if set.Remove(k) {
						logs[w] = append(logs[w], op{insert: false, key: k})
					}
				default: // 40% lookup
					set.Contains(k)
				}
			}
		}()
	}
	wg.Wait()

	// Every successful insert/remove is atomic, so per key the counts must
	// reconcile: inserts - removes == final membership (0 or 1).
	delta := map[int]int{}
	for _, l := range logs {
		for _, o := range l {
			if o.insert {
				delta[o.key]++
			} else {
				delta[o.key]--
			}
		}
	}
	final := set.Snapshot()
	if !sort.IntsAreSorted(final) {
		log.Fatalf("set not sorted: %v", final)
	}
	member := map[int]bool{}
	for _, k := range final {
		if member[k] {
			log.Fatalf("duplicate key %d in set", k)
		}
		member[k] = true
	}
	for k := 0; k < keys; k++ {
		want := delta[k] == 1
		if delta[k] != 0 && delta[k] != 1 {
			log.Fatalf("key %d: inserts-removes = %d; atomicity violated", k, delta[k])
		}
		if member[k] != want {
			log.Fatalf("key %d: membership %v, log says %v", k, member[k], want)
		}
	}
	fmt.Printf("%d workers × %d ops: set consistent, %d keys present\n", workers, opsEach, len(final))
}
