// mutexrmr: the Section 5 demo. Builds the paper's Algorithm 1 mutex L(M)
// from strongly progressive TMs, runs n processes through contended
// acquisitions on the simulated machine under each cache model, and prints
// measured RMRs next to the n·k·log₂(n) reference curve of Theorem 9 —
// alongside the classic spin locks whose RMR behaviour brackets the story
// (TAS: unbounded; MCS: O(1) even in DSM; CLH: O(1) only in CC).
//
// Run with: go run ./examples/mutexrmr
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	ptm "repro"
)

func main() {
	ns := []int{2, 4, 8, 16, 32}
	const k = 4

	fmt.Println("Theorem 9: any strictly serializable, strongly progressive TM using")
	fmt.Println("read/write/conditional primitives on one t-object has executions with")
	fmt.Println("Ω(n log n) RMRs — proved by the reduction L(M) below (Algorithm 1).")
	fmt.Println()

	for _, model := range ptm.CacheModels() {
		t := ptm.Table{
			Title:  fmt.Sprintf("model=%s, k=%d acquisitions/process", model, k),
			Header: []string{"lock", "n", "total-rmrs", "rmrs/acq", "nk·log2(n)"},
		}
		for _, lock := range []string{"lm:irtm", "lm:norec", "lm:sgltm", "tas", "ttas", "ticket", "anderson", "mcs", "clh", "bakery", "tournament"} {
			rows, err := ptm.RunE3(lock, model, ns, k, 42)
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range rows {
				if r.Violations != 0 {
					log.Fatalf("%s: mutual exclusion violated!", lock)
				}
				t.Add(r.Lock, r.N, r.TotalRMRs, r.PerAcq, r.NLogN)
			}
		}
		ptm.PrintTable(os.Stdout, &t)
	}

	fmt.Println("Theorem 7: L(M)'s RMR cost is the TM's cost plus O(1) hand-off per")
	fmt.Println("acquisition. Measured split:")
	fmt.Println()
	for _, model := range ptm.CacheModels() {
		t := ptm.Table{
			Title:  "L(M) RMR split, model=" + model,
			Header: []string{"lock", "n", "tm-rmrs", "handoff-rmrs", "handoff/acq"},
		}
		for _, lock := range []string{"lm:irtm", "lm:norec", "lm:sgltm"} {
			rows, err := ptm.RunE4(lock, model, ns, k, 42)
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range rows {
				t.Add(r.Lock, r.N, r.TMRMRs, r.HandoffRMRs, r.HandoffPerAcq)
			}
		}
		ptm.PrintTable(os.Stdout, &t)
	}
	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("Note the hand-off column staying flat as n grows (Theorem 7's O(1)),")
	fmt.Println("and MCS remaining O(1)/acq under DSM while CLH and the global-spin")
	fmt.Println("locks degrade — the structure the Ω(n log n) bound lives in.")
}
