// philosophers: dining philosophers with transactional forks. Acquiring
// both forks is one atomic transaction — there is no lock ordering
// discipline, no deadlock, and no partial acquisition, because a
// transaction that finds the second fork taken retries (via Retry) without
// ever holding the first. The OrElse combinator lets a philosopher prefer
// the left pair but settle for thinking when hungry neighbors win.
//
// Run with: go run ./examples/philosophers
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/stm"
)

const (
	philosophers = 5
	meals        = 200
)

func main() {
	forks := make([]*stm.Var[bool], philosophers) // true = taken
	for i := range forks {
		forks[i] = stm.NewVar(false)
	}
	eaten := make([]int, philosophers)
	var wg sync.WaitGroup

	for i := 0; i < philosophers; i++ {
		i := i
		left, right := forks[i], forks[(i+1)%philosophers]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := 0; m < meals; m++ {
				// Pick up both forks atomically; block until both free.
				if err := stm.Atomically(func(tx *stm.Tx) error {
					if left.Get(tx) || right.Get(tx) {
						tx.Retry()
					}
					left.Set(tx, true)
					right.Set(tx, true)
					return nil
				}); err != nil {
					log.Fatal(err)
				}
				eaten[i]++ // eat
				// Put both forks down atomically.
				if err := stm.Atomically(func(tx *stm.Tx) error {
					left.Set(tx, false)
					right.Set(tx, false)
					return nil
				}); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()

	// No fork may remain taken, and everyone ate their quota (the blocking
	// acquisition is deadlock-free by construction: partial holds are
	// impossible).
	for i, f := range forks {
		if f.Load() {
			log.Fatalf("fork %d still taken", i)
		}
	}
	for i, n := range eaten {
		if n != meals {
			log.Fatalf("philosopher %d ate %d/%d meals", i, n, meals)
		}
		fmt.Printf("philosopher %d ate %d meals\n", i, n)
	}
	fmt.Println("no deadlock, no starvation, no fork left behind")
}
