// validationcost: the Theorem 3 demo. Runs the Lemma-2 adversary against
// every TM algorithm on the instrumented simulator and prints the reader's
// step counts next to the theorem's m(m−1)/2 prediction, showing
//
//   - the invisible-read weak-DAP TM (irtm) paying exactly the quadratic
//     validation bill,
//   - TL2 paying it in abort-restarts instead of validation,
//   - NOrec paying it in value revalidation, and
//   - the TMs that violate a hypothesis of the theorem (visible reads,
//     multi-versioning) staying linear.
//
// Run with: go run ./examples/validationcost
package main

import (
	"fmt"
	"log"
	"os"

	ptm "repro"
)

func main() {
	ms := []int{4, 8, 16, 32, 64, 128}

	fmt.Println("Theorem 3(1): a read-only transaction of m reads in an opaque,")
	fmt.Println("weak-DAP, weak-invisible-read progressive TM performs Ω(m²) steps.")
	fmt.Println()

	for _, mode := range []bool{false, true} {
		label := "solo (π^m, no contention)"
		if mode {
			label = "Lemma-2 adversary (a committed write before every read)"
		}
		t := ptm.Table{
			Title:  label,
			Header: []string{"tm", "m", "attempts", "reader-steps", "m(m-1)/2", "class"},
		}
		for _, name := range ptm.Algorithms() {
			rows, err := ptm.RunE1(name, ms, mode)
			if err != nil {
				fmt.Fprintf(os.Stderr, "  (skipping %s: %v)\n", name, err)
				continue
			}
			for _, r := range rows {
				t.Add(r.TM, r.M, r.Attempts, r.TotalSteps, uint64(r.M)*uint64(r.M-1)/2, classOf(r.TM))
			}
		}
		ptm.PrintTable(os.Stdout, &t)
	}

	// The tightness check: irtm matches the closed form step for step.
	rows, err := ptm.RunE6(ms)
	if err != nil {
		log.Fatal(err)
	}
	t := ptm.Table{
		Title:  "Section 6 tightness: irtm solo steps = m(m-1)/2 + 3m, exactly",
		Header: []string{"m", "measured", "formula", "match"},
	}
	for _, r := range rows {
		t.Add(r.M, r.Measured, r.Formula, r.Measured == r.Formula)
	}
	ptm.PrintTable(os.Stdout, &t)
}

func classOf(tm string) string {
	switch tm {
	case "irtm":
		return "in-hypothesis (pays Θ(m²) validating)"
	case "tl2":
		return "¬weak-DAP (pays Θ(m²) restarting)"
	case "norec":
		return "¬DAP (pays Θ(m²) revalidating)"
	case "vrtm":
		return "¬invisible-reads (linear)"
	case "mvtm":
		return "multi-version, ¬weak-DAP (linear)"
	case "sgltm":
		return "blocking, visible lock (linear)"
	case "dstm":
		return "in-hypothesis (pays Θ(m²) validating)"
	case "tml":
		return "¬progressive (pays in spurious aborts)"
	}
	return "?"
}
