// Quickstart: concurrent bank transfers with the native stm package.
//
// Run with: go run ./examples/quickstart
//
// Eight goroutines move money between ten accounts while two auditors
// repeatedly snapshot the whole bank inside read-only transactions. Opacity
// guarantees every audit sees a conserved total, and the final state
// balances to the initial sum.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/stm"
)

const (
	accounts = 10
	initial  = 1_000
	workers  = 8
	transfer = 2_000 // transfers per worker
)

func main() {
	bank := make([]*stm.Var[int], accounts)
	for i := range bank {
		bank[i] = stm.NewVar(initial)
	}

	audit := func() int {
		var sum int
		err := stm.Atomically(func(tx *stm.Tx) error {
			sum = 0
			for _, acct := range bank {
				sum += acct.Get(tx)
			}
			return nil
		})
		if err != nil {
			log.Fatalf("audit: %v", err)
		}
		return sum
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Auditors: read-only transactions must always see a conserved total.
	audits := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if got := audit(); got != accounts*initial {
				log.Fatalf("audit saw a torn state: total = %d, want %d", got, accounts*initial)
			}
			audits++
		}
	}()

	// Workers: random transfers.
	var tg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		tg.Add(1)
		go func() {
			defer tg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			next := func(n int) int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int(rng>>33) % n
			}
			for i := 0; i < transfer; i++ {
				from, to := next(accounts), next(accounts)
				if from == to {
					continue
				}
				amount := 1 + next(50)
				err := stm.Atomically(func(tx *stm.Tx) error {
					f := bank[from].Get(tx)
					bank[from].Set(tx, f-amount)
					bank[to].Set(tx, bank[to].Get(tx)+amount)
					return nil
				})
				if err != nil {
					log.Fatalf("transfer: %v", err)
				}
			}
		}()
	}
	tg.Wait()
	close(stop)
	wg.Wait()

	fmt.Printf("%d workers × %d transfers done; %d consistent audits\n", workers, transfer, audits)
	total := 0
	for i, acct := range bank {
		v := acct.Load()
		total += v
		fmt.Printf("  account %d: %5d\n", i, v)
	}
	fmt.Printf("total: %d (expected %d)\n", total, accounts*initial)
	if total != accounts*initial {
		log.Fatal("conservation violated")
	}
}
