// Benchmarks regenerating every experiment of DESIGN.md's per-experiment
// index. The simulated experiments (E1–E6) report the paper's quantities —
// steps, distinct base objects, RMRs — as custom metrics (wall-clock time
// of a simulator is not the object of study); E8 benchmarks the native stm
// package for real throughput.
package progressivetm

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/exp"
	"repro/stm"
	"repro/stm/mvstm"
	"repro/stm/norecstm"
)

var (
	e1Sizes  = []int{8, 32, 128}
	e3Procs  = []int{2, 4, 8, 16, 32}
	tmNames  = []string{"irtm", "tl2", "norec", "vrtm", "sgltm", "mvtm", "mvtm-gc", "dstm", "tml"}
	rmrLocks = []string{"lm:irtm", "lm:norec", "lm:sgltm", "tas", "ttas", "ticket", "anderson", "mcs", "clh", "bakery", "tournament", "llsc"}
)

// BenchmarkE1ValidationSteps regenerates experiment E1 (Theorem 3(1), the
// read-validation step-complexity figure): reader steps per committed
// read-only transaction of m reads, solo and against the Lemma-2 adversary.
func BenchmarkE1ValidationSteps(b *testing.B) {
	for _, name := range tmNames {
		for _, adversary := range []bool{false, true} {
			if adversary && name == "sgltm" {
				continue // blocking TM: the adversary execution does not exist
			}
			mode := "solo"
			if adversary {
				mode = "adversary"
			}
			for _, m := range e1Sizes {
				b.Run(fmt.Sprintf("tm=%s/mode=%s/m=%d", name, mode, m), func(b *testing.B) {
					var last exp.E1Row
					for i := 0; i < b.N; i++ {
						rows, err := exp.RunE1(name, []int{m}, adversary)
						if err != nil {
							b.Fatal(err)
						}
						last = rows[0]
					}
					b.ReportMetric(float64(last.TotalSteps), "steps/txn")
					b.ReportMetric(float64(last.LastReadSteps), "steps/lastread")
					b.ReportMetric(float64(last.Attempts), "attempts")
				})
			}
		}
	}
}

// BenchmarkE2SpaceLastRead regenerates experiment E2 (Theorem 3(2), the
// space figure): distinct base objects accessed during the m-th read and
// tryCommit.
func BenchmarkE2SpaceLastRead(b *testing.B) {
	for _, name := range tmNames {
		for _, m := range e1Sizes {
			b.Run(fmt.Sprintf("tm=%s/m=%d", name, m), func(b *testing.B) {
				var last exp.E2Row
				for i := 0; i < b.N; i++ {
					rows, err := exp.RunE2(name, []int{m}, false)
					if err != nil {
						b.Fatal(err)
					}
					last = rows[0]
				}
				b.ReportMetric(float64(last.DistinctObjs), "objects/lastread+tryC")
				b.ReportMetric(float64(last.Bound), "bound(m-1)")
			})
		}
	}
}

// BenchmarkE3RMR regenerates experiment E3 (Theorem 9, the RMR figure):
// total RMRs when n processes each acquire the lock k times, per cache
// model, for L(M) over each strongly progressive TM and for the classic
// spin-lock baselines.
func BenchmarkE3RMR(b *testing.B) {
	const k = 4
	for _, lock := range rmrLocks {
		for _, model := range []string{"cc-wt", "cc-wb", "dsm"} {
			for _, n := range e3Procs {
				b.Run(fmt.Sprintf("lock=%s/model=%s/n=%d", lock, model, n), func(b *testing.B) {
					var last exp.E3Row
					for i := 0; i < b.N; i++ {
						rows, err := exp.RunE3(lock, model, []int{n}, k, 42)
						if err != nil {
							b.Fatal(err)
						}
						last = rows[0]
						if last.Violations != 0 {
							b.Fatalf("mutual exclusion violated %d times", last.Violations)
						}
					}
					b.ReportMetric(float64(last.TotalRMRs), "rmrs/run")
					b.ReportMetric(last.PerAcq, "rmrs/acq")
					b.ReportMetric(last.NLogN, "nlogn-ref")
				})
			}
		}
	}
}

// BenchmarkE4Overhead regenerates experiment E4 (Theorem 7): the hand-off
// RMRs of L(M) per acquisition, which the theorem bounds by O(1).
func BenchmarkE4Overhead(b *testing.B) {
	const k = 4
	for _, lock := range []string{"lm:irtm", "lm:norec", "lm:sgltm"} {
		for _, model := range []string{"cc-wt", "cc-wb", "dsm"} {
			for _, n := range []int{2, 8, 32} {
				b.Run(fmt.Sprintf("lock=%s/model=%s/n=%d", lock, model, n), func(b *testing.B) {
					var last exp.E4Row
					for i := 0; i < b.N; i++ {
						rows, err := exp.RunE4(lock, model, []int{n}, k, 42)
						if err != nil {
							b.Fatal(err)
						}
						last = rows[0]
					}
					b.ReportMetric(float64(last.TMRMRs), "tm-rmrs")
					b.ReportMetric(float64(last.HandoffRMRs), "handoff-rmrs")
					b.ReportMetric(last.HandoffPerAcq, "handoff-rmrs/acq")
				})
			}
		}
	}
}

// BenchmarkE6Tightness regenerates experiment E6 (Section 6): irtm's exact
// match of the m(m−1)/2 + 3m closed form.
func BenchmarkE6Tightness(b *testing.B) {
	for _, m := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			var last exp.E6Row
			for i := 0; i < b.N; i++ {
				rows, err := exp.RunE6([]int{m})
				if err != nil {
					b.Fatal(err)
				}
				last = rows[0]
				if last.Measured != last.Formula {
					b.Fatalf("measured %d ≠ formula %d", last.Measured, last.Formula)
				}
			}
			b.ReportMetric(float64(last.Measured), "steps")
		})
	}
}

// BenchmarkE7Progress regenerates experiment E7: committed/aborted split of
// the randomized contention workload per TM.
func BenchmarkE7Progress(b *testing.B) {
	for _, name := range tmNames {
		b.Run("tm="+name, func(b *testing.B) {
			var last exp.E7Row
			for i := 0; i < b.N; i++ {
				row, err := exp.RunE7(name, exp.E7Config{
					Procs: 4, TxnsPerProc: 8, Objects: 4, OpsPerTxn: 3,
					WriteRatio: 0.5, Seed: int64(i) + 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = row
			}
			total := float64(last.Committed + last.Aborted)
			b.ReportMetric(float64(last.Committed), "committed")
			b.ReportMetric(float64(last.Aborted), "aborted")
			if total > 0 {
				b.ReportMetric(float64(last.Aborted)/total, "abort-ratio")
			}
		})
	}
}

// BenchmarkE9Scenarios regenerates experiment E9 (the STAMP-style scenario
// suite) on the simulator: ordered-index scans racing point updates, and
// two-table reservations, per TM, reporting the paper's quantities as
// custom metrics.
func BenchmarkE9Scenarios(b *testing.B) {
	for _, name := range append(append([]string{}, tmNames...), "tl2:ext", "tl2:gv6+ext") {
		name := name
		b.Run("tm="+name, func(b *testing.B) {
			var last []exp.E9Row
			for i := 0; i < b.N; i++ {
				rows, err := exp.RunE9(name, exp.DefaultE9Config())
				if err != nil {
					b.Fatal(err)
				}
				last = rows
			}
			for _, r := range last {
				b.ReportMetric(r.AbortRatio, "abort-ratio-"+r.Scenario)
				b.ReportMetric(r.StepsPerTxn, "steps/txn-"+r.Scenario)
			}
		})
	}
}

// BenchmarkE9NativeIndexScan is the native half of the E9 ordered-index
// scenario: transactional range scans over an stm.OrderedMap racing point
// updates, the first long-read-set pointer workload the native engine's
// clock-strategy and extension knobs see. Compare the abort-ratio metric
// across the two pipeline sub-benchmarks: on BenchmarkVarContended the
// delta is visible, here it is structural.
func BenchmarkE9NativeIndexScan(b *testing.B) {
	const (
		nkeys   = 512
		scanLen = 32
	)
	run := func(b *testing.B, strat stm.ClockStrategy, ext bool) {
		stm.SetClockStrategy(strat)
		stm.SetTimestampExtension(ext)
		defer stm.SetTimestampExtension(true)
		defer stm.SetClockStrategy(stm.GV4)
		m := stm.NewOrderedMap[int]()
		keys := make([]string, nkeys)
		if err := stm.Atomically(func(tx *stm.Tx) error {
			for i := range keys {
				keys[i] = fmt.Sprintf("key%04d", i)
				m.Put(tx, keys[i], i)
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		var seq atomic.Uint64
		before := stm.ReadStats()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := seq.Add(1)
				base := (i * 2654435761) % nkeys
				if i%8 == 0 {
					_ = stm.Atomically(func(tx *stm.Tx) error {
						v, _ := m.Get(tx, keys[base])
						m.Put(tx, keys[base], v+1)
						return nil
					})
				} else {
					from := keys[base]
					_ = stm.Atomically(func(tx *stm.Tx) error {
						n, s := 0, 0
						m.Range(tx, from, "", func(_ string, v int) bool {
							s += v
							n++
							return n < scanLen
						})
						_ = s
						return nil
					})
				}
			}
		})
		d := stm.ReadStats().Sub(before)
		b.ReportMetric(d.AbortRatio(), "abort-ratio")
		if d.Commits > 0 {
			b.ReportMetric(float64(d.Extensions)/float64(d.Commits), "extensions/txn")
		}
	}
	b.Run("pipeline=pr1-gv1-noext", func(b *testing.B) { run(b, stm.GV1, false) })
	b.Run("pipeline=gv4-ext", func(b *testing.B) { run(b, stm.GV4, true) })
}

// BenchmarkE9NativeReservation is the native half of the E9 reservation
// scenario: multi-key read-modify-write across two transactional maps
// (customers and resources) in one atomic step, plus occasional two-table
// audits — the composability workload (STAMP vacation's shape) running on
// the adoptable containers.
func BenchmarkE9NativeReservation(b *testing.B) {
	const (
		customers = 128
		resources = 128
		probes    = 4
	)
	cust := stm.NewMap[int](64)
	res := stm.NewOrderedMap[int]()
	ckeys := make([]string, customers)
	rkeys := make([]string, resources)
	if err := stm.Atomically(func(tx *stm.Tx) error {
		for i := range ckeys {
			ckeys[i] = fmt.Sprintf("cust%03d", i)
			cust.Put(tx, ckeys[i], 0)
		}
		for i := range rkeys {
			rkeys[i] = fmt.Sprintf("res%03d", i)
			res.Put(tx, rkeys[i], 0)
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	var seq atomic.Uint64
	before := stm.ReadStats()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			c := ckeys[(i*2654435761)%customers]
			base := (i * 40503) % resources
			if i%16 == 0 {
				// Audit: ordered scan of a resource window plus the customer.
				_ = stm.Atomically(func(tx *stm.Tx) error {
					_, _ = cust.Get(tx, c)
					n := 0
					res.Range(tx, rkeys[base], "", func(string, int) bool {
						n++
						return n < 16
					})
					return nil
				})
				continue
			}
			// Reservation: probe an ordered run of resources, book the
			// least-loaded one, charge the customer — atomically.
			_ = stm.Atomically(func(tx *stm.Tx) error {
				best, bestLoad := "", int(^uint(0)>>1)
				for j := 0; j < probes; j++ {
					k := rkeys[(base+uint64(j))%resources]
					v, _ := res.Get(tx, k)
					if v < bestLoad {
						best, bestLoad = k, v
					}
				}
				res.Put(tx, best, bestLoad+1)
				bal, _ := cust.Get(tx, c)
				cust.Put(tx, c, bal+1)
				return nil
			})
		}
	})
	d := stm.ReadStats().Sub(before)
	b.ReportMetric(d.AbortRatio(), "abort-ratio")
	if d.Commits > 0 {
		b.ReportMetric(float64(d.Extensions)/float64(d.Commits), "extensions/txn")
	}
}

// BenchmarkE10Scenarios regenerates experiment E10 (read-mostly serving)
// on the simulator: Zipf hot-key gets and ordered scans racing a small
// writer pool, per TM, with the TL2 read-only mode ablated (declared vs
// undeclared read transactions).
func BenchmarkE10Scenarios(b *testing.B) {
	for _, name := range append(append([]string{}, tmNames...), "tl2:ext", "tl2:gv6+ext") {
		name := name
		for _, declare := range []bool{false, true} {
			declare := declare
			if declare && name != "tl2" && !strings.HasPrefix(name, "tl2:") {
				continue // only the TL2 family implements the RO hint; ro=true elsewhere would re-measure ro=false
			}
			b.Run(fmt.Sprintf("tm=%s/ro=%v", name, declare), func(b *testing.B) {
				cfg := exp.DefaultE10Config()
				cfg.DeclareRO = declare
				var last exp.E10Row
				for i := 0; i < b.N; i++ {
					row, err := exp.RunE10(name, cfg)
					if err != nil {
						b.Fatal(err)
					}
					last = row
				}
				b.ReportMetric(last.AbortRatio, "abort-ratio")
				b.ReportMetric(last.StepsPerTxn, "steps/txn")
			})
		}
	}
}

// BenchmarkE10NativeServing is the native read-mostly serving scenario —
// the workload the read-only fast path exists for: Zipf hot-key gets over
// an stm.Map and ordered scans over an stm.OrderedMap, racing a small
// writer pool that churns the same hot keys. The path=ro sub-benchmark
// runs every read transaction through AtomicallyRO (no read-set logging,
// no commit validation); path=default runs the identical workload through
// Atomically. Compare ns/op, allocs/op and the abort-ratio metric between
// the two, and the ro-commit-fraction metric for how much of the workload
// actually rode the fast path.
func BenchmarkE10NativeServing(b *testing.B) {
	const (
		mkeys   = 1024 // hash-map serving table
		okeys   = 512  // ordered index
		scanLen = 16
		tabBits = 13 // 8192-entry precomputed Zipf index table
	)
	// Inverse-transform Zipf (s = 1.07) sampled into a lookup table with a
	// deterministic LCG, so the hot loop costs one mask and one load.
	cdf := make([]float64, mkeys)
	total := 0.0
	for i := range cdf {
		total += 1 / math.Pow(float64(i+1), 1.07)
		cdf[i] = total
	}
	zipf := make([]uint32, 1<<tabBits)
	rng := uint64(1)
	for i := range zipf {
		rng = rng*6364136223846793005 + 1442695040888963407
		u := float64(rng>>11) / (1 << 53) * total
		zipf[i] = uint32(sort.SearchFloat64s(cdf, u))
	}
	run := func(b *testing.B, readTx func(func(tx *stm.Tx) error) error) {
		m := stm.NewMap[int](256)
		om := stm.NewOrderedMap[int]()
		mk := make([]string, mkeys)
		ok := make([]string, okeys)
		if err := stm.Atomically(func(tx *stm.Tx) error {
			for i := range mk {
				mk[i] = fmt.Sprintf("key%04d", i)
				m.Put(tx, mk[i], i)
			}
			for i := range ok {
				ok[i] = fmt.Sprintf("okey%03d", i)
				om.Put(tx, ok[i], i)
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		var seq atomic.Uint64
		before := stm.ReadStats()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := seq.Add(1)
				hot := int(zipf[(i*2654435761)&(1<<tabBits-1)])
				switch {
				case i%16 == 0:
					// Writer pool (~6%): point RMW on a hot key, alternating
					// between the serving map and the ordered index.
					if i%32 == 0 {
						_ = stm.Atomically(func(tx *stm.Tx) error {
							v, _ := m.Get(tx, mk[hot])
							m.Put(tx, mk[hot], v+1)
							return nil
						})
					} else {
						k := ok[hot%okeys]
						_ = stm.Atomically(func(tx *stm.Tx) error {
							v, _ := om.Get(tx, k)
							om.Put(tx, k, v+1)
							return nil
						})
					}
				case i%4 == 1:
					// Ordered scan (~23% of traffic): a consistent window over
					// the index, the long-read-set serving query.
					from := ok[hot%okeys]
					_ = readTx(func(tx *stm.Tx) error {
						n, s := 0, 0
						om.Range(tx, from, "", func(_ string, v int) bool {
							s += v
							n++
							return n < scanLen
						})
						_ = s
						return nil
					})
				default:
					// Hot-key multi-get (~70%): the dominant serving lookup.
					k1, k2, k3 := mk[hot], mk[int(zipf[(i*40503+1)&(1<<tabBits-1)])], mk[(hot+1)%mkeys]
					_ = readTx(func(tx *stm.Tx) error {
						s := 0
						for _, k := range [...]string{k1, k2, k3} {
							if v, present := m.Get(tx, k); present {
								s += v
							}
						}
						_ = s
						return nil
					})
				}
			}
		})
		d := stm.ReadStats().Sub(before)
		b.ReportMetric(d.AbortRatio(), "abort-ratio")
		if d.Commits > 0 {
			b.ReportMetric(float64(d.ROCommits)/float64(d.Commits), "ro-commit-fraction")
			b.ReportMetric(float64(d.Extensions)/float64(d.Commits), "extensions/txn")
		}
	}
	b.Run("path=default", func(b *testing.B) { run(b, stm.Atomically) })
	b.Run("path=ro", func(b *testing.B) { run(b, stm.AtomicallyRO) })
}

// BenchmarkE11Scenarios regenerates experiment E11 (the long-scan/HTAP
// scenario) on the simulator: long ordered scans and multi-key aggregates
// racing a writer pool, per TM, reporting read-side aborts, scan steps
// and live space as custom metrics — the time/space trade in one table.
func BenchmarkE11Scenarios(b *testing.B) {
	for _, name := range append(append([]string{}, tmNames...), "tl2:ext", "tl2:gv6+ext") {
		name := name
		b.Run("tm="+name, func(b *testing.B) {
			var last exp.E11Row
			for i := 0; i < b.N; i++ {
				row, err := exp.RunE11(name, exp.DefaultE11Config())
				if err != nil {
					b.Fatal(err)
				}
				last = row
			}
			b.ReportMetric(last.AbortRatio, "abort-ratio")
			b.ReportMetric(float64(last.ReadAborts), "read-aborts")
			b.ReportMetric(last.ScanSteps, "scan-steps/txn")
			b.ReportMetric(float64(last.Space), "space")
		})
	}
}

// BenchmarkE11NativeScan is the native half of E11 and the acceptance
// benchmark of the mvstm engine: long scans over a shared table racing a
// pool of background point writers, identical across three pipelines —
// stm Atomically (full read-set logging + commit validation), stm
// AtomicallyRO (zero-validation certified reads, abort/replay on churn),
// and mvstm AtomicallyRO (pinned-snapshot chain reads: no certification,
// no aborts, structurally). The read-aborts/op metric counts scan
// attempts beyond the first — exactly 0 for mvstm — and the mvstm cells
// also report the GC evidence: versions reclaimed per scan, and
// chain-hwm-peak, the engine-lifetime chain-length high-water mark
// (mvstm.Stats.ChainHWM is a monotone process-wide maximum, so the value
// is the peak up to and including the cell, not a per-cell reading; its
// bound — a small multiple of the retention plus whatever growth pinned
// scans force — is the acceptance signal).
func BenchmarkE11NativeScan(b *testing.B) {
	const nkeys = 512
	runSTM := func(b *testing.B, scanLen, writers int, scanTx func(func(*stm.Tx) error) error) {
		vars := make([]*stm.Var[int], nkeys)
		for i := range vars {
			vars[i] = stm.NewVar(i)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := uint64(w)*2654435761 + 1
				for {
					select {
					case <-stop:
						return
					default:
					}
					rng = rng*6364136223846793005 + 1442695040888963407
					v := vars[rng%nkeys]
					_ = stm.Atomically(func(tx *stm.Tx) error {
						v.Set(tx, v.Get(tx)+1)
						return nil
					})
				}
			}()
		}
		var attempts, scans atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var n uint64
			for pb.Next() {
				n++
				start := int((n * 2654435761) % nkeys)
				_ = scanTx(func(tx *stm.Tx) error {
					attempts.Add(1)
					s := 0
					for j := 0; j < scanLen; j++ {
						s += vars[(start+j)%nkeys].Get(tx)
					}
					_ = s
					return nil
				})
			}
			scans.Add(n)
		})
		b.StopTimer()
		close(stop)
		wg.Wait()
		b.ReportMetric(float64(attempts.Load()-scans.Load())/float64(scans.Load()), "read-aborts/op")
	}
	runMVStm := func(b *testing.B, scanLen, writers int) {
		vars := make([]*mvstm.Var[int], nkeys)
		for i := range vars {
			vars[i] = mvstm.NewVar(i)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := uint64(w)*2654435761 + 1
				for {
					select {
					case <-stop:
						return
					default:
					}
					rng = rng*6364136223846793005 + 1442695040888963407
					v := vars[rng%nkeys]
					_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
						// Wrap mod 256: the runtime interns boxed ints
						// 0..255 (staticuint64s), so the writer's Set never
						// allocates and the cell's steady-state allocs/op
						// stays exactly 0 — the -zeroalloc gate's target.
						v.Set(tx, (v.Get(tx)+1)%256)
						return nil
					})
				}
			}()
		}
		var attempts, scans atomic.Uint64
		before := mvstm.ReadStats()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var n uint64
			for pb.Next() {
				n++
				start := int((n * 2654435761) % nkeys)
				_ = mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
					attempts.Add(1)
					s := 0
					for j := 0; j < scanLen; j++ {
						s += vars[(start+j)%nkeys].Get(tx)
					}
					_ = s
					return nil
				})
			}
			scans.Add(n)
		})
		b.StopTimer()
		close(stop)
		wg.Wait()
		d := mvstm.ReadStats().Sub(before)
		b.ReportMetric(float64(attempts.Load()-scans.Load())/float64(scans.Load()), "read-aborts/op")
		b.ReportMetric(float64(d.VersionsReclaimed)/float64(scans.Load()), "reclaimed/op")
		b.ReportMetric(float64(d.ChainHWM), "chain-hwm-peak")
		b.ReportMetric(d.MeanChainWalk(), "chain-walk/read")
	}
	for _, scanLen := range []int{64, 256} {
		for _, writers := range []int{1, 4} {
			prefix := fmt.Sprintf("scan=%d/writers=%d/", scanLen, writers)
			b.Run(prefix+"engine=stm/path=default", func(b *testing.B) { runSTM(b, scanLen, writers, stm.Atomically) })
			b.Run(prefix+"engine=stm/path=ro", func(b *testing.B) { runSTM(b, scanLen, writers, stm.AtomicallyRO) })
			b.Run(prefix+"engine=mvstm/path=snapshot", func(b *testing.B) { runMVStm(b, scanLen, writers) })
		}
	}
}

// BenchmarkE8NativeCounter measures the native stm package: contended
// read-modify-write transactions (the workload whose validation cost
// Theorem 3 bounds).
func BenchmarkE8NativeCounter(b *testing.B) {
	ctr := stm.NewVar(0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = stm.Atomically(func(tx *stm.Tx) error {
				ctr.Set(tx, ctr.Get(tx)+1)
				return nil
			})
		}
	})
}

// BenchmarkE8NativeReadOnly measures invisible-read scaling: read-only
// transactions over disjoint-ish hot data.
func BenchmarkE8NativeReadOnly(b *testing.B) {
	const vars = 64
	vs := make([]*stm.Var[int], vars)
	for i := range vs {
		vs[i] = stm.NewVar(i)
	}
	for _, m := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("readset=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					_ = stm.Atomically(func(tx *stm.Tx) error {
						s := 0
						for i := 0; i < m; i++ {
							s += vs[i].Get(tx)
						}
						_ = s
						return nil
					})
				}
			})
		})
	}
}

// BenchmarkE8NativeBank measures mixed transfer transactions across many
// accounts (low conflict probability, the DAP-friendly regime).
func BenchmarkE8NativeBank(b *testing.B) {
	const accounts = 256
	vs := make([]*stm.Var[int], accounts)
	for i := range vs {
		vs[i] = stm.NewVar(1000)
	}
	var seq atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			from := vs[(i*2654435761)%accounts]
			to := vs[(i*40503+17)%accounts]
			if from == to {
				continue
			}
			_ = stm.Atomically(func(tx *stm.Tx) error {
				f := from.Get(tx)
				from.Set(tx, f-1)
				to.Set(tx, to.Get(tx)+1)
				return nil
			})
		}
	})
}

// BenchmarkE8ClockStrategies is the commit-pipeline ablation: identical
// contended workloads under each clock strategy × timestamp-extension
// configuration. strategy=gv1/ext=off is the PR 1 pipeline (unconditional
// clock.Add, abort on stale read version); strategy=gv4/ext=on is the
// current default. Custom metrics report the abort ratio and extensions
// per committed transaction from the engine's striped counters.
func BenchmarkE8ClockStrategies(b *testing.B) {
	type variant struct {
		name  string
		strat stm.ClockStrategy
		ext   bool
	}
	variants := []variant{
		{"strategy=gv1/ext=off", stm.GV1, false},
		{"strategy=gv1/ext=on", stm.GV1, true},
		{"strategy=gv4/ext=on", stm.GV4, true},
		{"strategy=gv6/ext=on", stm.GV6, true},
		{"strategy=gv7/ext=on", stm.GV7, true},
		{"strategy=tictoc", stm.TicToc, true},
	}
	// Enable-before-select: GV6/GV7 refuse selection while extension is
	// off. Every cell creates its Vars after selecting the pipeline, which
	// is what makes the tictoc rows safe (TicToc reinterprets the lock-word
	// payload and must never see versioned payloads).
	set := func(v variant) {
		if v.ext {
			stm.SetTimestampExtension(true)
			stm.SetClockStrategy(v.strat)
		} else {
			stm.SetClockStrategy(v.strat)
			stm.SetTimestampExtension(v.ext)
		}
	}
	defer stm.SetClockStrategy(stm.GV4)
	defer stm.SetTimestampExtension(true)
	for _, v := range variants {
		b.Run(v.name+"/workload=counter", func(b *testing.B) {
			set(v)
			ctr := stm.NewVar(0)
			before := stm.ReadStats()
			b.ReportAllocs()
			b.SetParallelism(4)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					_ = stm.Atomically(func(tx *stm.Tx) error {
						ctr.Set(tx, ctr.Get(tx)+1)
						return nil
					})
				}
			})
			d := stm.ReadStats().Sub(before)
			b.ReportMetric(d.AbortRatio(), "abort-ratio")
			if d.Commits > 0 {
				b.ReportMetric(float64(d.Extensions)/float64(d.Commits), "extensions/txn")
			}
		})
		b.Run(v.name+"/workload=bank", func(b *testing.B) {
			set(v)
			const accounts = 256
			vs := make([]*stm.Var[int], accounts)
			for i := range vs {
				vs[i] = stm.NewVar(1000)
			}
			var seq atomic.Uint64
			before := stm.ReadStats()
			b.ReportAllocs()
			b.SetParallelism(4)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					from := vs[(i*2654435761)%accounts]
					to := vs[(i*40503+17)%accounts]
					if from == to {
						continue
					}
					if i%10 == 0 {
						_ = stm.Atomically(func(tx *stm.Tx) error {
							s := 0
							for j := uint64(0); j < 8; j++ {
								s += vs[(i+j)%accounts].Get(tx)
							}
							_ = s
							return nil
						})
					} else {
						_ = stm.Atomically(func(tx *stm.Tx) error {
							f := from.Get(tx)
							from.Set(tx, f-1)
							to.Set(tx, to.Get(tx)+1)
							return nil
						})
					}
				}
			})
			d := stm.ReadStats().Sub(before)
			b.ReportMetric(d.AbortRatio(), "abort-ratio")
			if d.Commits > 0 {
				b.ReportMetric(float64(d.Extensions)/float64(d.Commits), "extensions/txn")
			}
		})
	}
}

// BenchmarkE8EngineCompare runs identical workloads on the two native
// engines (TL2 in repro/stm, NOrec in repro/stm/norecstm) — the ablation of
// DESIGN.md's E8 row carried into native code: same invisible-read scaling
// for read-only work, different write-side costs (per-variable locks vs.
// one global sequence lock).
func BenchmarkE8EngineCompare(b *testing.B) {
	b.Run("engine=tl2/readonly", func(b *testing.B) {
		vars := make([]*stm.Var[int], 16)
		for i := range vars {
			vars[i] = stm.NewVar(i)
		}
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				_ = stm.Atomically(func(tx *stm.Tx) error {
					s := 0
					for _, v := range vars {
						s += v.Get(tx)
					}
					_ = s
					return nil
				})
			}
		})
	})
	b.Run("engine=norec/readonly", func(b *testing.B) {
		vars := make([]*norecstm.Var[int], 16)
		for i := range vars {
			vars[i] = norecstm.NewVar(i)
		}
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
					s := 0
					for _, v := range vars {
						s += v.Get(tx)
					}
					_ = s
					return nil
				})
			}
		})
	})
	b.Run("engine=tl2/disjoint-writes", func(b *testing.B) {
		vars := make([]*stm.Var[int], 64)
		for i := range vars {
			vars[i] = stm.NewVar(0)
		}
		var seq atomic.Uint64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				v := vars[seq.Add(1)%64]
				_ = stm.Atomically(func(tx *stm.Tx) error {
					v.Set(tx, v.Get(tx)+1)
					return nil
				})
			}
		})
	})
	b.Run("engine=norec/disjoint-writes", func(b *testing.B) {
		vars := make([]*norecstm.Var[int], 64)
		for i := range vars {
			vars[i] = norecstm.NewVar(0)
		}
		var seq atomic.Uint64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				v := vars[seq.Add(1)%64]
				_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
					v.Set(tx, v.Get(tx)+1)
					return nil
				})
			}
		})
	})
}
