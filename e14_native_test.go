package progressivetm

// The native half of experiment E14 (clustering): a stream of tiny
// read-modify-writes funneled onto K shared centroid accumulators, the
// STAMP kmeans contention shape. K is the knob: centroids=1 puts every
// concurrent assignment pair in conflict (the pathological cell),
// centroids=16 spreads them out, and the cell ratio is each engine's
// contention-management bill. Both stm (TL2-style lazy locking) and
// norecstm (value-validation with a single sequence lock) run the same
// cells — NOrec's global commit serialization meets its cheap validation
// here. The simulator counterpart is internal/exp's RunE14
// (tmbench -exp e14).

import (
	"sync"
	"testing"

	"repro/stm"
	"repro/stm/norecstm"
)

func BenchmarkE14Clustering(b *testing.B) {
	ks := []struct {
		name string
		k    int
	}{
		{"centroids=1", 1},
		{"centroids=16", 16},
	}
	b.Run("engine=stm", func(b *testing.B) {
		for _, kc := range ks {
			kc := kc
			b.Run(kc.name, func(b *testing.B) {
				sums := make([]*stm.Var[int], kc.k)
				counts := make([]*stm.Var[int], kc.k)
				for i := 0; i < kc.k; i++ {
					sums[i] = stm.NewVar(0)
					counts[i] = stm.NewVar(0)
				}
				b.RunParallel(func(pb *testing.PB) {
					rng := uint64(0x9e3779b97f4a7c15)
					for pb.Next() {
						rng = rng*6364136223846793005 + 1442695040888963407
						c := int(rng % uint64(kc.k))
						v := int(rng>>32)%1000 + 1
						_ = stm.Atomically(func(tx *stm.Tx) error {
							sums[c].Set(tx, sums[c].Get(tx)+v)
							counts[c].Set(tx, counts[c].Get(tx)+1)
							return nil
						})
					}
				})
			})
		}
	})
	b.Run("engine=norecstm", func(b *testing.B) {
		for _, kc := range ks {
			kc := kc
			b.Run(kc.name, func(b *testing.B) {
				sums := make([]*norecstm.Var[int], kc.k)
				counts := make([]*norecstm.Var[int], kc.k)
				for i := 0; i < kc.k; i++ {
					sums[i] = norecstm.NewVar(0)
					counts[i] = norecstm.NewVar(0)
				}
				b.RunParallel(func(pb *testing.PB) {
					rng := uint64(0x243f6a8885a308d3)
					for pb.Next() {
						rng = rng*6364136223846793005 + 1442695040888963407
						c := int(rng % uint64(kc.k))
						v := int(rng>>32)%1000 + 1
						_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
							sums[c].Set(tx, sums[c].Get(tx)+v)
							counts[c].Set(tx, counts[c].Get(tx)+1)
							return nil
						})
					}
				})
			})
		}
	})
}

// TestE14Clustering is the functional (race-smoke) version: workers race
// assignments onto shared accumulators while a recenter reader snapshots
// all of them mid-flight, and at the end the accumulators must conserve
// the assignment stream exactly — a lost RMW or a torn sum/count pair
// (recenter observing one updated without the other) fails.
func TestE14Clustering(t *testing.T) {
	const (
		workers   = 8
		perWorker = 400
		k         = 4
	)
	t.Run("engine=stm", func(t *testing.T) {
		sums := make([]*stm.Var[int], k)
		counts := make([]*stm.Var[int], k)
		for i := 0; i < k; i++ {
			sums[i] = stm.NewVar(0)
			counts[i] = stm.NewVar(0)
		}
		var wantSum, wantCnt int
		var mu sync.Mutex
		done := make(chan struct{})
		var readerWG sync.WaitGroup
		readerWG.Add(1)
		go func() {
			// The recenter reader: every snapshot must see sum and count
			// move together (count 0 with a nonzero sum is a torn pair).
			defer readerWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := stm.Atomically(func(tx *stm.Tx) error {
					for i := 0; i < k; i++ {
						if sums[i].Get(tx) != 0 && counts[i].Get(tx) == 0 {
							t.Error("snapshot saw a sum without its count")
						}
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := uint64(w+1) * 0x9e3779b97f4a7c15
				localSum, localCnt := 0, 0
				for n := 0; n < perWorker; n++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					c := int(rng % k)
					v := int(rng>>32)%1000 + 1
					if err := stm.Atomically(func(tx *stm.Tx) error {
						sums[c].Set(tx, sums[c].Get(tx)+v)
						counts[c].Set(tx, counts[c].Get(tx)+1)
						return nil
					}); err != nil {
						t.Error(err)
						return
					}
					localSum += v
					localCnt++
				}
				mu.Lock()
				wantSum += localSum
				wantCnt += localCnt
				mu.Unlock()
			}()
		}
		wg.Wait()
		close(done)
		readerWG.Wait()
		gotSum, gotCnt := 0, 0
		if err := stm.Atomically(func(tx *stm.Tx) error {
			gotSum, gotCnt = 0, 0
			for i := 0; i < k; i++ {
				gotSum += sums[i].Get(tx)
				gotCnt += counts[i].Get(tx)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if gotSum != wantSum || gotCnt != wantCnt {
			t.Fatalf("accumulators hold sum=%d count=%d, want sum=%d count=%d — an assignment was lost", gotSum, gotCnt, wantSum, wantCnt)
		}
	})
	t.Run("engine=norecstm", func(t *testing.T) {
		sums := make([]*norecstm.Var[int], k)
		counts := make([]*norecstm.Var[int], k)
		for i := 0; i < k; i++ {
			sums[i] = norecstm.NewVar(0)
			counts[i] = norecstm.NewVar(0)
		}
		var wantSum, wantCnt int
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := uint64(w+1) * 0x243f6a8885a308d3
				localSum, localCnt := 0, 0
				for n := 0; n < perWorker; n++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					c := int(rng % k)
					v := int(rng>>32)%1000 + 1
					if err := norecstm.Atomically(func(tx *norecstm.Tx) error {
						sums[c].Set(tx, sums[c].Get(tx)+v)
						counts[c].Set(tx, counts[c].Get(tx)+1)
						return nil
					}); err != nil {
						t.Error(err)
						return
					}
					localSum += v
					localCnt++
				}
				mu.Lock()
				wantSum += localSum
				wantCnt += localCnt
				mu.Unlock()
			}()
		}
		wg.Wait()
		gotSum, gotCnt := 0, 0
		if err := norecstm.AtomicallyRO(func(tx *norecstm.Tx) error {
			gotSum, gotCnt = 0, 0
			for i := 0; i < k; i++ {
				gotSum += sums[i].Get(tx)
				gotCnt += counts[i].Get(tx)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if gotSum != wantSum || gotCnt != wantCnt {
			t.Fatalf("accumulators hold sum=%d count=%d, want sum=%d count=%d — an assignment was lost", gotSum, gotCnt, wantSum, wantCnt)
		}
	})
}
