package progressivetm

// The native half of experiment E13 (graph routing): routers claim
// L-shaped paths through a shared Var grid, reading a long speculative
// run of cells and then writing every one of them. Two engine behaviors
// are priced:
//
//   - Write-set promotion. A route longer than writeSetMapThreshold (24)
//     crosses stm's sorted-slice → map switch; the writeset=short vs
//     writeset=long benchmark cells straddle that boundary so the
//     promotion cost shows up as the cell ratio.
//
//   - Budget charging on write-heavy work. Unlike E12's read-only scans,
//     a metered route is charged for reads and buffered writes; the
//     race-smoke test pins that a grant below a route's footprint refuses
//     the route with ErrOutOfBudget counted in BudgetAborts.
//
// BenchmarkE13GraphRouting claims and releases one path per iteration so
// the grid stays in steady state under RunParallel. The simulator
// counterpart is internal/exp's RunE13 (tmbench -exp e13).

import (
	"errors"
	"sync"
	"testing"

	"repro/stm"
	"repro/stm/budget"
	"repro/stm/mvstm"
)

const (
	e13GridW = 32
	e13GridH = 32
)

// e13Cells returns the L-shaped path from (sx,sy) to (dx,dy): along the
// row first, then the column — the same deterministic stand-in for
// breadth-first expansion the simulator scenario uses.
func e13Cells(sx, sy, dx, dy int) []int {
	step := func(a, b int) int {
		if a < b {
			return 1
		}
		return -1
	}
	x, y := sx, sy
	cells := []int{y*e13GridW + x}
	for x != dx {
		x += step(x, dx)
		cells = append(cells, y*e13GridW+x)
	}
	for y != dy {
		y += step(y, dy)
		cells = append(cells, y*e13GridW+x)
	}
	return cells
}

var errE13Taken = errors.New("e13: cell already claimed")

func BenchmarkE13GraphRouting(b *testing.B) {
	// short stays below writeSetMapThreshold (24 writes); long crosses it,
	// forcing the sorted-slice → map write-set promotion every route.
	spans := []struct {
		name string
		span int // path length ≈ 2*span+1 cells
	}{
		{"writeset=short", 8},
		{"writeset=long", 20},
	}
	b.Run("engine=stm", func(b *testing.B) {
		for _, sp := range spans {
			sp := sp
			b.Run(sp.name, func(b *testing.B) {
				grid := make([]*stm.Var[int], e13GridW*e13GridH)
				for i := range grid {
					grid[i] = stm.NewVar(0)
				}
				b.RunParallel(func(pb *testing.PB) {
					rng := uint64(0x9e3779b97f4a7c15)
					for pb.Next() {
						rng = rng*6364136223846793005 + 1442695040888963407
						sx, sy := int(rng%uint64(e13GridW-sp.span)), int((rng>>16)%uint64(e13GridH-sp.span))
						path := e13Cells(sx, sy, sx+sp.span, sy+sp.span)
						// Claim the whole path (skip if any cell is taken),
						// then release it so the grid stays in steady state.
						err := stm.Atomically(func(tx *stm.Tx) error {
							for _, c := range path {
								if grid[c].Get(tx) != 0 {
									return errE13Taken
								}
							}
							for _, c := range path {
								grid[c].Set(tx, 1)
							}
							return nil
						})
						if err == nil {
							_ = stm.Atomically(func(tx *stm.Tx) error {
								for _, c := range path {
									grid[c].Set(tx, 0)
								}
								return nil
							})
						}
					}
				})
			})
		}
	})
	b.Run("engine=mvstm", func(b *testing.B) {
		for _, sp := range spans {
			sp := sp
			b.Run(sp.name, func(b *testing.B) {
				grid := make([]*mvstm.Var[int], e13GridW*e13GridH)
				for i := range grid {
					grid[i] = mvstm.NewVar(0)
				}
				b.RunParallel(func(pb *testing.PB) {
					rng := uint64(0x243f6a8885a308d3)
					for pb.Next() {
						rng = rng*6364136223846793005 + 1442695040888963407
						sx, sy := int(rng%uint64(e13GridW-sp.span)), int((rng>>16)%uint64(e13GridH-sp.span))
						path := e13Cells(sx, sy, sx+sp.span, sy+sp.span)
						err := mvstm.Atomically(func(tx *mvstm.Tx) error {
							for _, c := range path {
								if grid[c].Get(tx) != 0 {
									return errE13Taken
								}
							}
							for _, c := range path {
								grid[c].Set(tx, 1)
							}
							return nil
						})
						if err == nil {
							_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
								for _, c := range path {
									grid[c].Set(tx, 0)
								}
								return nil
							})
						}
					}
				})
			})
		}
	})
}

// TestE13GraphRouting is the functional (race-smoke) version: routers
// race to claim crossing paths, and afterwards the grid must be exactly
// partitioned — every cell owned by at most one router, and every
// committed route's cells all carrying its id (a torn route would mean a
// write set published partially).
func TestE13GraphRouting(t *testing.T) {
	const routers = 8
	t.Run("engine=stm", func(t *testing.T) {
		grid := make([]*stm.Var[int], e13GridW*e13GridH)
		for i := range grid {
			grid[i] = stm.NewVar(0)
		}
		var mu sync.Mutex
		claimedPaths := make(map[int][]int) // router id → committed path
		var wg sync.WaitGroup
		for r := 0; r < routers; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				id := r + 1
				rng := uint64(id) * 0x9e3779b97f4a7c15
				for n := 0; n < 4; n++ {
					for attempt := 0; attempt < 16; attempt++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						sx, sy := int(rng%e13GridW), int((rng>>16)%e13GridH)
						dx, dy := int((rng>>32)%e13GridW), int((rng>>48)%e13GridH)
						path := e13Cells(sx, sy, dx, dy)
						err := stm.Atomically(func(tx *stm.Tx) error {
							for _, c := range path {
								if grid[c].Get(tx) != 0 {
									return errE13Taken
								}
							}
							for _, c := range path {
								grid[c].Set(tx, id)
							}
							return nil
						})
						if err == nil {
							mu.Lock()
							claimedPaths[id] = append(claimedPaths[id], path...)
							mu.Unlock()
							break
						}
					}
				}
			}()
		}
		wg.Wait()
		// The grid is exactly the union of the committed paths.
		want := 0
		for id, cells := range claimedPaths {
			for _, c := range cells {
				got := 0
				if err := stm.Atomically(func(tx *stm.Tx) error {
					got = grid[c].Get(tx)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if got != id {
					t.Fatalf("cell %d = %d, want owner %d — a committed route was torn", c, got, id)
				}
			}
			want += len(cells)
		}
		occupied := 0
		if err := stm.Atomically(func(tx *stm.Tx) error {
			occupied = 0
			for _, v := range grid {
				if v.Get(tx) != 0 {
					occupied++
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if occupied != want {
			t.Fatalf("%d occupied cells, want the %d claimed by committed routes", occupied, want)
		}
	})
	t.Run("engine=stm/metered", func(t *testing.T) {
		// A grant below a long route's read+write footprint must refuse the
		// route, and the refusal must be a BudgetAbort — the write-heavy
		// counterpart of E12's refused scans.
		grid := make([]*stm.Var[int], e13GridW*e13GridH)
		for i := range grid {
			grid[i] = stm.NewVar(0)
		}
		stm.SetBudgetPolicy(budget.Fixed{Limit: 8})
		defer stm.SetBudgetPolicy(nil)
		before := stm.ReadStats()
		path := e13Cells(0, 0, e13GridW-1, e13GridH-1)
		err := stm.Atomically(func(tx *stm.Tx) error {
			for _, c := range path {
				if grid[c].Get(tx) != 0 {
					return errE13Taken
				}
			}
			for _, c := range path {
				grid[c].Set(tx, 1)
			}
			return nil
		})
		if !errors.Is(err, budget.ErrOutOfBudget) {
			t.Fatalf("route over %d cells under an 8-step grant: err = %v, want ErrOutOfBudget", len(path), err)
		}
		if d := stm.ReadStats().Sub(before); d.BudgetAborts == 0 {
			t.Error("refusal not counted in BudgetAborts")
		}
		stm.SetBudgetPolicy(nil)
		if err := stm.Atomically(func(tx *stm.Tx) error {
			for _, c := range path {
				if grid[c].Get(tx) != 0 {
					return errE13Taken
				}
			}
			return nil
		}); err != nil {
			t.Fatalf("refused route left cells claimed or locks held: %v", err)
		}
	})
	t.Run("engine=mvstm", func(t *testing.T) {
		grid := make([]*mvstm.Var[int], e13GridW*e13GridH)
		for i := range grid {
			grid[i] = mvstm.NewVar(0)
		}
		var claimed [routers + 1][]int
		var wg sync.WaitGroup
		for r := 0; r < routers; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				id := r + 1
				rng := uint64(id) * 0x243f6a8885a308d3
				for n := 0; n < 4; n++ {
					for attempt := 0; attempt < 16; attempt++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						sx, sy := int(rng%e13GridW), int((rng>>16)%e13GridH)
						dx, dy := int((rng>>32)%e13GridW), int((rng>>48)%e13GridH)
						path := e13Cells(sx, sy, dx, dy)
						err := mvstm.Atomically(func(tx *mvstm.Tx) error {
							for _, c := range path {
								if grid[c].Get(tx) != 0 {
									return errE13Taken
								}
							}
							for _, c := range path {
								grid[c].Set(tx, id)
							}
							return nil
						})
						if err == nil {
							claimed[id] = append(claimed[id], path...)
							break
						}
					}
				}
			}()
		}
		wg.Wait()
		want := 0
		for id, cells := range claimed {
			for _, c := range cells {
				got := 0
				if err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
					got = grid[c].Get(tx)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if got != id {
					t.Fatalf("cell %d = %d, want owner %d — a committed route was torn", c, got, id)
				}
			}
			want += len(cells)
		}
		occupied := 0
		if err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
			occupied = 0
			for _, v := range grid {
				if v.Get(tx) != 0 {
					occupied++
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if occupied != want {
			t.Fatalf("%d occupied cells, want the %d claimed by committed routes", occupied, want)
		}
	})
}
