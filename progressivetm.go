// Package progressivetm is the public face of the reproduction of
// Kuznetsov & Ravi, "Progressive Transactional Memory in Time and Space"
// (PACT 2015). It re-exports the building blocks a user needs to
//
//   - run TM algorithms (irtm, tl2, norec, vrtm, sgltm, mvtm) on the
//     instrumented shared-memory simulator and measure steps, distinct base
//     objects and RMRs (internal/memory, internal/tm/*),
//   - construct the paper's executions (Lemma 2, Claim 4) and check
//     histories against opacity, strict serializability and the progress
//     conditions (internal/core, internal/check),
//   - build mutual exclusion from a strongly progressive TM (Algorithm 1)
//     and compare its RMR complexity with classic spin locks
//     (internal/mutex), and
//   - regenerate every experiment in DESIGN.md's per-experiment index
//     (internal/exp).
//
// For writing concurrent Go programs with transactions (the adoptable
// library rather than the research instrument), see the sibling package
// repro/stm and its containers (Map, OrderedMap, Queue). README.md is the
// guided tour; DESIGN.md holds the per-experiment index (E1–E11) and the
// engine's soundness arguments.
package progressivetm

import (
	"io"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/memory"
	"repro/internal/mutex"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/tmreg"
)

// Core model types, re-exported for users of the simulated framework.
type (
	// Memory is the simulated shared memory (see internal/memory).
	Memory = memory.Memory
	// Proc is a process handle applying primitives to a Memory.
	Proc = memory.Proc
	// Span attributes steps/RMRs/objects to a labelled code region.
	Span = memory.Span
	// CacheModel classifies accesses as local or RMR.
	CacheModel = memory.Model
	// TM is the transactional memory interface of the paper's model.
	TM = tm.TM
	// Txn is a live transaction.
	Txn = tm.Txn
	// Props is the TM property lattice (opacity, DAP, progressiveness...).
	Props = tm.Props
	// History is a recorded TM history.
	History = tm.History
	// Recorder wraps a TM and records its history.
	Recorder = tm.Recorder
	// Lock is a mutual exclusion object over simulated memory.
	Lock = mutex.Lock
	// Scheduler deterministically interleaves processes.
	Scheduler = sched.Scheduler
	// Table renders experiment rows.
	Table = exp.Table
)

// ErrAborted is the A_k response: the transaction aborted.
var ErrAborted = tm.ErrAborted

// NewMemory creates a simulated shared memory for nprocs processes under
// the named cache model ("cc-wt", "cc-wb", "dsm"), or without RMR
// accounting when model is "".
func NewMemory(nprocs int, model string) *Memory {
	if model == "" {
		return memory.New(nprocs, nil)
	}
	m := memory.ModelByName(model)
	if m == nil {
		return nil
	}
	return memory.New(nprocs, m)
}

// CacheModels lists the cache model names ("cc-wt", "cc-wb", "dsm").
func CacheModels() []string {
	names := make([]string, 0, 3)
	for _, m := range memory.Models() {
		names = append(names, m.Name())
	}
	return names
}

// Algorithms lists the available TM algorithm names.
func Algorithms() []string { return tmreg.Names() }

// ClockVariants lists the TL2 clock-strategy/extension variant names
// ("tl2:gv4", "tl2:ext", …) accepted by NewTM and swept by the E5
// clock-strategy axis.
func ClockVariants() []string { return tmreg.ClockVariants() }

// NewTM builds the named TM algorithm over nobj t-objects on mem.
func NewTM(name string, mem *Memory, nobj int) (TM, error) {
	return tmreg.New(name, mem, nobj)
}

// Record wraps a TM so its history can be checked afterwards.
func Record(t TM) *Recorder { return tm.Record(t) }

// Atomically retries body until a transaction of t commits.
func Atomically(t TM, p *Proc, body func(Txn) error) error {
	return tm.Atomically(t, p, body)
}

// NewScheduler creates a deterministic cooperative scheduler over mem.
func NewScheduler(mem *Memory) *Scheduler { return sched.New(mem) }

// RandomPolicy returns a seeded random scheduling policy.
func RandomPolicy(seed int64) sched.Policy { return sched.NewRandom(seed) }

// RoundRobinPolicy returns a fair rotating scheduling policy.
func RoundRobinPolicy() sched.Policy { return &sched.RoundRobin{} }

// ReplayPolicy replays an explicit schedule (e.g. an Explore
// counterexample).
func ReplayPolicy(trace []int) sched.Policy { return sched.NewReplay(trace) }

// ExploreOpts bounds a systematic schedule exploration.
type ExploreOpts = sched.ExploreOpts

// ExploreResult summarizes a systematic schedule exploration.
type ExploreResult = sched.ExploreResult

// Explore model-checks a program over every schedule within a preemption
// bound; see sched.Explore. build must construct a fresh system under test
// and return its scheduler plus a post-run property check.
func Explore(build func() (*Scheduler, func() error), opts ExploreOpts) (ExploreResult, error) {
	return sched.Explore(build, opts)
}

// Locks lists the mutual-exclusion algorithms, including "lm:<tm>" for
// Algorithm 1 over each strongly progressive TM.
func Locks() []string { return exp.LockNames() }

// NewLock builds the named lock over mem.
func NewLock(name string, mem *Memory) (Lock, error) { return exp.NewLock(name, mem) }

// NewLM builds the paper's Algorithm 1 mutex from a strictly serializable,
// strongly progressive TM that accesses a single t-object.
func NewLM(mem *Memory, t TM) *mutex.LM { return mutex.NewLM(mem, t) }

// History checkers (internal/check).

// IsStrictlySerializable reports whether the committed transactions of h
// admit a legal serialization respecting real-time order.
func IsStrictlySerializable(h *History) bool { return check.StrictlySerializable(h).OK }

// IsOpaque reports whether all transactions of h (including aborted ones)
// admit a single legal serialization respecting real-time order.
func IsOpaque(h *History) bool { return check.Opaque(h).OK }

// ProgressivenessViolations lists aborts that had no concurrent conflict.
func ProgressivenessViolations(h *History) []check.ProgressViolation {
	return check.Progressive(h)
}

// Paper constructions (internal/core).

// Lemma2 builds the execution π^{i−1}·ρ^i·α_i of Figure 1 for the named TM.
func Lemma2(tmName string, i int) (core.Lemma2Result, error) { return core.Lemma2(tmName, i) }

// Claim4 builds the execution π^{i−1}·β^ℓ·ρ^i·α^i_j for the named TM.
func Claim4(tmName string, i, l int) (core.Claim4Outcome, error) { return core.Claim4(tmName, i, l) }

// Experiment runners (internal/exp); see DESIGN.md's per-experiment index.

// RunE1 measures read-only step complexity (Theorem 3(1)).
func RunE1(tmName string, ms []int, adversary bool) ([]exp.E1Row, error) {
	return exp.RunE1(tmName, ms, adversary)
}

// RunE2 measures distinct base objects in the last read + tryC
// (Theorem 3(2)).
func RunE2(tmName string, ms []int, adversary bool) ([]exp.E2Row, error) {
	return exp.RunE2(tmName, ms, adversary)
}

// RunE3 measures total RMRs of contended mutual exclusion (Theorem 9).
func RunE3(lock, model string, ns []int, k int, seed int64) ([]exp.E3Row, error) {
	return exp.RunE3(lock, model, ns, k, seed)
}

// RunE4 splits L(M)'s RMRs into TM and hand-off parts (Theorem 7).
func RunE4(lock, model string, ns []int, k int, seed int64) ([]exp.E4Row, error) {
	return exp.RunE4(lock, model, ns, k, seed)
}

// RunE5 runs the contention-sweep ablation (abort ratio, steps/commit).
func RunE5(tmName string, cfg exp.E5Config) ([]exp.E5Row, error) { return exp.RunE5(tmName, cfg) }

// RunE6 checks the exact tightness formula of Section 6.
func RunE6(ms []int) ([]exp.E6Row, error) { return exp.RunE6(ms) }

// RunE7 runs the randomized progress/correctness experiment.
func RunE7(tmName string, cfg exp.E7Config) (exp.E7Row, error) { return exp.RunE7(tmName, cfg) }

// RunE9 runs the STAMP-style scenario suite (ordered-index scans racing
// point updates; two-table reservations).
func RunE9(tmName string, cfg exp.E9Config) ([]exp.E9Row, error) { return exp.RunE9(tmName, cfg) }

// RunE10 runs the read-mostly serving scenario (Zipf hot-key gets and
// ordered scans racing a small writer pool), optionally declaring read
// transactions read-only via the tm.ReadOnlyHinter fast path.
func RunE10(tmName string, cfg exp.E10Config) (exp.E10Row, error) { return exp.RunE10(tmName, cfg) }

// RunE11 runs the long-scan/HTAP scenario (long ordered scans and
// multi-key aggregates racing a writer pool): the table where the
// multi-version TMs' zero read-side aborts meet their space bill. The
// native counterpart is BenchmarkE11NativeScan (repro/stm vs
// repro/stm/mvstm).
func RunE11(tmName string, cfg exp.E11Config) (exp.E11Row, error) { return exp.RunE11(tmName, cfg) }

// RunE12 runs the hostile-tenant scenario (unbounded full-table scans
// sharing a TM with a pool of point writers), optionally enforcing a
// per-attempt step budget on the hostile tenants — the harness-level
// model of repro/stm's work budgets and ErrOutOfBudget. The native
// counterpart is BenchmarkE12HostileTenant (repro/stm and
// repro/stm/mvstm under a real BudgetPolicy).
func RunE12(tmName string, cfg exp.E12Config) (exp.E12Row, error) { return exp.RunE12(tmName, cfg) }

// RunE13 runs the graph-routing scenario (STAMP labyrinth shape: routers
// claiming long speculative paths through a shared grid, write sets as
// large as read sets), optionally metering each attempt with a step
// budget so over-long routes are refused. The native counterpart is
// BenchmarkE13GraphRouting (repro/stm and repro/stm/mvstm).
func RunE13(tmName string, cfg exp.E13Config) (exp.E13Row, error) { return exp.RunE13(tmName, cfg) }

// RunE14 runs the clustering scenario (STAMP kmeans shape: tiny
// read-modify-writes funneled onto K shared centroid accumulators, with
// periodic full-width recenter passes) — the high-contention point-RMW
// counterpart of E13's long routes. The native counterpart is
// BenchmarkE14Clustering (repro/stm and repro/stm/norecstm).
func RunE14(tmName string, cfg exp.E14Config) (exp.E14Row, error) { return exp.RunE14(tmName, cfg) }

// RunE15 runs the producer/consumer pipeline scenario (a bounded queue
// where transactions are the coordination: producers poll under
// backpressure, consumers poll under starvation). The native counterpart
// is BenchmarkE15Pipeline, where stm.Queue's Retry replaces polling with
// composable blocking.
func RunE15(tmName string, cfg exp.E15Config) (exp.E15Row, error) { return exp.RunE15(tmName, cfg) }

// PrintTable renders rows produced by the Run* helpers.
func PrintTable(w io.Writer, t *Table) { t.Print(w) }
