package progressivetm_test

import (
	"strings"
	"testing"

	ptm "repro"
	"repro/internal/exp"
)

// TestFacadeEndToEnd drives the whole public surface once: build a memory,
// run a recorded transactional workload under the scheduler, check the
// history, and run the paper constructions.
func TestFacadeEndToEnd(t *testing.T) {
	mem := ptm.NewMemory(2, "cc-wb")
	if mem == nil {
		t.Fatal("NewMemory returned nil for a valid model")
	}
	tmi, err := ptm.NewTM("irtm", mem, 4)
	if err != nil {
		t.Fatal(err)
	}
	rec := ptm.Record(tmi)
	s := ptm.NewScheduler(mem)
	for i := 0; i < 2; i++ {
		i := i
		s.Go(i, func(p *ptm.Proc) {
			for n := 0; n < 3; n++ {
				_ = ptm.Atomically(rec, p, func(tx ptm.Txn) error {
					v, err := tx.Read(i)
					if err != nil {
						return err
					}
					return tx.Write((i+1)%4, v+1)
				})
			}
		})
	}
	if err := s.Run(ptm.RandomPolicy(3)); err != nil {
		t.Fatal(err)
	}
	h := rec.History()
	if !ptm.IsStrictlySerializable(h) {
		t.Fatalf("history not strictly serializable:\n%s", h)
	}
	if !ptm.IsOpaque(h) {
		t.Fatalf("history not opaque:\n%s", h)
	}
	if v := ptm.ProgressivenessViolations(h); len(v) != 0 {
		t.Fatalf("progressiveness violations: %v", v)
	}
	if mem.TotalRMRs() == 0 {
		t.Error("no RMRs recorded under cc-wb")
	}
}

// TestFacadeRunE11 smoke-tests the E11 facade runner: the multi-version
// row must complete its quota with zero read-side aborts.
func TestFacadeRunE11(t *testing.T) {
	cfg := exp.DefaultE11Config()
	cfg.Procs, cfg.TxnsPerProc = 4, 4
	row, err := ptm.RunE11("mvtm-gc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.Commits != cfg.Procs*cfg.TxnsPerProc {
		t.Fatalf("commits = %d, want %d", row.Commits, cfg.Procs*cfg.TxnsPerProc)
	}
	if row.ReadAborts != 0 {
		t.Fatalf("multi-version read aborts = %d, want 0", row.ReadAborts)
	}
}

// TestFacadeRunE12 smoke-tests the E12 facade runner: with a step grant
// below the scan length every hostile scan is refused, and the victims
// still complete their quota.
func TestFacadeRunE12(t *testing.T) {
	cfg := exp.DefaultE12Config()
	cfg.Procs, cfg.TxnsPerProc, cfg.HostileTxns = 4, 4, 4
	row, err := ptm.RunE12("tl2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	victims := (cfg.Procs - cfg.Hostiles) * cfg.TxnsPerProc
	if row.VictimCommits != victims {
		t.Fatalf("victim commits = %d, want %d", row.VictimCommits, victims)
	}
	if row.HostileBudgetAborts != cfg.Hostiles*cfg.HostileTxns {
		t.Fatalf("hostile refusals = %d, want %d", row.HostileBudgetAborts, cfg.Hostiles*cfg.HostileTxns)
	}
	if row.HostileCommits != 0 {
		t.Fatalf("hostile commits = %d under an insufficient grant", row.HostileCommits)
	}
}

// TestFacadeRunE13 smoke-tests the E13 facade runner: every route
// resolves exactly one way, and with no budget none is refused.
func TestFacadeRunE13(t *testing.T) {
	cfg := exp.DefaultE13Config()
	cfg.Procs, cfg.RoutesPerProc = 4, 3
	row, err := ptm.RunE13("tl2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	quota := cfg.Procs * cfg.RoutesPerProc
	if got := row.Routed + row.Replanned + row.Refused; got != quota {
		t.Fatalf("routes resolved %d ways, want %d", got, quota)
	}
	if row.Refused != 0 {
		t.Fatalf("refused = %d with no budget", row.Refused)
	}
}

// TestFacadeRunE14 smoke-tests the E14 facade runner: the commit quota is
// fixed by the config (assignments plus recenter passes).
func TestFacadeRunE14(t *testing.T) {
	cfg := exp.DefaultE14Config()
	cfg.Procs, cfg.PointsPerProc, cfg.RecenterEvery = 4, 8, 4
	row, err := ptm.RunE14("tl2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Procs*cfg.PointsPerProc + cfg.Procs*(cfg.PointsPerProc/cfg.RecenterEvery)
	if row.Commits != want {
		t.Fatalf("commits = %d, want %d", row.Commits, want)
	}
}

// TestFacadeRunE15 smoke-tests the E15 facade runner: the full item flow
// passes through the pipe (RunE15 cross-checks the checksum itself).
func TestFacadeRunE15(t *testing.T) {
	cfg := exp.DefaultE15Config()
	cfg.Producers, cfg.Consumers, cfg.ItemsPerProducer = 2, 2, 6
	row, err := ptm.RunE15("tl2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Producers * cfg.ItemsPerProducer
	if row.Produced != want || row.Consumed != want {
		t.Fatalf("produced %d, consumed %d, want %d each", row.Produced, row.Consumed, want)
	}
}

func TestFacadeRegistries(t *testing.T) {
	algos := ptm.Algorithms()
	if len(algos) < 8 {
		t.Fatalf("Algorithms() = %v, want at least the 8 built-ins", algos)
	}
	for _, want := range []string{"irtm", "tl2", "norec", "vrtm", "sgltm", "mvtm", "dstm", "tml"} {
		found := false
		for _, a := range algos {
			if a == want {
				found = true
			}
		}
		if !found {
			t.Errorf("algorithm %q missing from registry", want)
		}
	}
	if got := ptm.CacheModels(); len(got) != 3 {
		t.Fatalf("CacheModels() = %v, want 3 models", got)
	}
	locks := ptm.Locks()
	hasLM := false
	for _, l := range locks {
		if strings.HasPrefix(l, "lm:") {
			hasLM = true
		}
	}
	if !hasLM {
		t.Fatalf("Locks() = %v, missing lm:* entries", locks)
	}
	if ptm.NewMemory(2, "bogus") != nil {
		t.Error("NewMemory accepted a bogus model")
	}
	if _, err := ptm.NewTM("bogus", ptm.NewMemory(1, ""), 1); err == nil {
		t.Error("NewTM accepted a bogus algorithm")
	}
}

// TestFacadePaperConstructions runs Lemma 2 and Claim 4 through the facade.
func TestFacadePaperConstructions(t *testing.T) {
	res, err := ptm.Lemma2("irtm", 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("Lemma 2 read aborted on irtm")
	}
	out, err := ptm.Claim4("irtm", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() == "" {
		t.Fatal("Claim4 outcome unprintable")
	}
}

// TestFacadeLM builds Algorithm 1 through the facade and exercises it.
func TestFacadeLM(t *testing.T) {
	mem := ptm.NewMemory(3, "dsm")
	tmi, err := ptm.NewTM("norec", mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	lock := ptm.NewLM(mem, tmi)
	s := ptm.NewScheduler(mem)
	inCS := 0
	for i := 0; i < 3; i++ {
		s.Go(i, func(p *ptm.Proc) {
			for j := 0; j < 3; j++ {
				lock.Enter(p)
				inCS++
				if inCS != 1 {
					t.Errorf("mutual exclusion violated")
				}
				inCS--
				lock.Exit(p)
			}
		})
	}
	if err := s.Run(ptm.RandomPolicy(9)); err != nil {
		t.Fatal(err)
	}
}
