package progressivetm

// The native half of experiment E15 (pipeline): producers and consumers
// over stm.Queue under burst load — producers emit bursts larger than
// the queue's capacity, so every burst drives Put into backpressure and
// every drain drives Take into starvation. Where the simulator scenario
// (internal/exp's RunE15) must poll — its Txn API has no Retry, so a
// blocked party commits a read-only probe and tries again — the native
// queue blocks: Put and Take call stm.Retry, parking the transaction
// until a committed write changes a read Var. The benchmark's ns/op is
// the per-item cost of that handoff, including the wakeups.

import (
	"sync"
	"testing"

	"repro/stm"
)

func BenchmarkE15Pipeline(b *testing.B) {
	cells := []struct {
		name      string
		producers int
		consumers int
		capacity  int
	}{
		{"shape=1p1c/cap=4", 1, 1, 4},
		{"shape=4p4c/cap=4", 4, 4, 4},
		{"shape=4p4c/cap=64", 4, 4, 64},
	}
	for _, c := range cells {
		c := c
		b.Run(c.name, func(b *testing.B) {
			q := stm.NewQueue[int](c.capacity)
			var wg sync.WaitGroup
			b.ResetTimer()
			// b.N items flow through the pipe: each producer puts its share,
			// each consumer takes its share, and the shares sum exactly to
			// b.N on both sides so the run drains.
			for i := 0; i < c.producers; i++ {
				share := b.N / c.producers
				if i < b.N%c.producers {
					share++
				}
				wg.Add(1)
				go func(share int) {
					defer wg.Done()
					for n := 0; n < share; n++ {
						_ = stm.Atomically(func(tx *stm.Tx) error {
							q.Put(tx, n)
							return nil
						})
					}
				}(share)
			}
			for i := 0; i < c.consumers; i++ {
				share := b.N / c.consumers
				if i < b.N%c.consumers {
					share++
				}
				wg.Add(1)
				go func(share int) {
					defer wg.Done()
					for n := 0; n < share; n++ {
						_ = stm.Atomically(func(tx *stm.Tx) error {
							q.Take(tx)
							return nil
						})
					}
				}(share)
			}
			wg.Wait()
		})
	}
}

// runE15Pipeline drives the functional (race-smoke) pipeline: producers
// emit bursts four times the queue's capacity, consumers drain exact
// shares, and the flow must conserve count and checksum — an item lost
// to a bad wakeup or delivered twice fails, as does a non-empty queue
// after both sides finish.
func runE15Pipeline(t *testing.T) {
	const (
		producers = 3
		consumers = 3
		burst     = 16
		bursts    = 8
		capacity  = 4 // burst > capacity: every burst hits backpressure
	)
	q := stm.NewQueue[int](capacity)
	total := producers * bursts * burst
	var wantSum int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local int64
			for bn := 0; bn < bursts; bn++ {
				for i := 0; i < burst; i++ {
					v := p*1_000_000 + bn*1_000 + i
					if err := stm.Atomically(func(tx *stm.Tx) error {
						q.Put(tx, v)
						return nil
					}); err != nil {
						t.Error(err)
						return
					}
					local += int64(v)
				}
			}
			mu.Lock()
			wantSum += local
			mu.Unlock()
		}()
	}
	var gotSum int64
	var consumed int
	for c := 0; c < consumers; c++ {
		share := total / consumers
		wg.Add(1)
		go func(share int) {
			defer wg.Done()
			var local int64
			for n := 0; n < share; n++ {
				var v int
				if err := stm.Atomically(func(tx *stm.Tx) error {
					v = q.Take(tx)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				local += int64(v)
			}
			mu.Lock()
			gotSum += local
			consumed += share
			mu.Unlock()
		}(share)
	}
	wg.Wait()
	if consumed != total {
		t.Fatalf("consumed %d items, want %d", consumed, total)
	}
	if gotSum != wantSum {
		t.Fatalf("consumed checksum %d, want %d — an item was lost or duplicated", gotSum, wantSum)
	}
	left := -1
	if err := stm.Atomically(func(tx *stm.Tx) error {
		left = q.Len(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if left != 0 {
		t.Fatalf("queue holds %d items after the flow drained", left)
	}
}

// TestE15Pipeline runs the pipeline under the default versioned clock.
func TestE15Pipeline(t *testing.T) { runE15Pipeline(t) }

// TestE15PipelineTicToc runs the same flow under TicToc, where Retry's
// wakeup probe must ignore foreign rts-advance CASes (they change the
// lock-word payload without publishing a value): blocked Puts and Takes
// must still wake on real commits and the conservation checks must hold.
func TestE15PipelineTicToc(t *testing.T) {
	stm.SetClockStrategy(stm.TicToc)
	defer stm.SetClockStrategy(stm.GV4)
	runE15Pipeline(t)
}
