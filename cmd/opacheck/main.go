// Command opacheck verifies a recorded TM history (JSON) against the
// paper's correctness and progress definitions: strict serializability,
// opacity, progressiveness and the single-item case of strong
// progressiveness.
//
// Histories come from two recorders that share the format: the simulator's
// tm.Record wrapper, and the native stm engine's test-only trace hook
// (stm/trace.go), which records every Atomically/AtomicallyRO attempt —
// read-only fast path included — as the same internal/tm.History, so
// native traces dumped as JSON (see TestTraceHistoryJSONRoundTrip) are
// checked with exactly this tool.
//
// Usage:
//
//	opacheck [-file history.json]        # default: stdin
//	opacheck -demo                       # print an example history and exit
//
// The JSON format is the natural encoding of internal/tm.History:
//
//	{"Txns": [{"ID": 0, "Proc": 0, "StartSeq": 0, "EndSeq": 3, "Status": 1,
//	           "Ops": [{"Seq": 1, "Kind": 1, "Obj": 0, "Value": 5},
//	                   {"Seq": 2, "Kind": 2}]}]}
//
// Kind: 0=read, 1=write, 2=tryCommit, 3=abort. Status: 0=live,
// 1=committed, 2=aborted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/check"
	"repro/internal/tm"
)

func main() {
	var (
		file = flag.String("file", "", "history JSON file (default: stdin)")
		demo = flag.Bool("demo", false, "print an example history JSON and exit")
	)
	flag.Parse()

	if *demo {
		printDemo()
		return
	}
	var r io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		fatal(err)
	}
	var h tm.History
	if err := json.Unmarshal(data, &h); err != nil {
		fatal(fmt.Errorf("parsing history: %w", err))
	}
	fmt.Print(h.String())

	ss := check.StrictlySerializable(&h)
	fmt.Printf("strictly serializable: %v", ss.OK)
	if ss.OK {
		fmt.Printf("  (witness order %v)", ss.Order)
	}
	fmt.Println()

	op := check.Opaque(&h)
	fmt.Printf("opaque:                %v", op.OK)
	if op.OK {
		fmt.Printf("  (witness order %v)", op.Order)
	}
	fmt.Println()

	pv := check.Progressive(&h)
	fmt.Printf("progressive:           %v", len(pv) == 0)
	if len(pv) > 0 {
		fmt.Printf("  (violations: %v)", pv)
	}
	fmt.Println()

	sv := check.StronglyProgressive(&h)
	fmt.Printf("strongly progressive:  %v", len(sv) == 0)
	if len(sv) > 0 {
		fmt.Printf("  (violations: %+v)", sv)
	}
	fmt.Println()

	if !ss.OK || !op.OK {
		os.Exit(1)
	}
}

func printDemo() {
	h := tm.History{Txns: []*tm.TxnRecord{
		{ID: 0, Proc: 0, StartSeq: 0, EndSeq: 3, Status: tm.TxnCommitted, Ops: []tm.Op{
			{Seq: 1, Kind: tm.OpWrite, Obj: 0, Value: 5},
			{Seq: 3, Kind: tm.OpTryCommit},
		}},
		{ID: 1, Proc: 1, StartSeq: 4, EndSeq: 6, Status: tm.TxnCommitted, Ops: []tm.Op{
			{Seq: 5, Kind: tm.OpRead, Obj: 0, Value: 5},
			{Seq: 6, Kind: tm.OpTryCommit},
		}},
	}}
	out, err := json.MarshalIndent(&h, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "opacheck:", err)
	os.Exit(1)
}
