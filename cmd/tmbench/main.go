// Command tmbench regenerates the experiment tables of DESIGN.md's
// per-experiment index from the command line.
//
// Usage:
//
//	tmbench -exp e1 [-tms irtm,tl2] [-ms 4,8,16,32] [-adversary]
//	tmbench -exp e2 [-tms irtm,tl2] [-ms 4,8,16,32] [-adversary]
//	tmbench -exp e3 [-locks lm:irtm,mcs] [-models cc-wb,dsm] [-ns 2,4,8] [-k 4] [-seed 42]
//	tmbench -exp e4 [-locks lm:irtm] [-models cc-wb] [-ns 2,8,32] [-k 4]
//	tmbench -exp e6 [-ms 4,8,16,32]
//	tmbench -exp e7 [-tms irtm] [-seed 42]
//	tmbench -exp e8 [-workers 8] [-dur 100ms] [-clock gv1,gv4+ext,gv7+ext,tictoc]
//	tmbench -exp e9 [-tms irtm,tl2] [-seed 42]
//	tmbench -exp e10 [-tms irtm,tl2] [-seed 42]
//	tmbench -exp e11 [-tms irtm,tl2,mvtm,mvtm-gc] [-seed 42]
//	tmbench -exp e12 [-tms irtm,tl2,mvtm-gc] [-seed 42]
//	tmbench -exp e13 [-tms irtm,tl2,mvtm] [-seed 42]
//	tmbench -exp e14 [-tms irtm,tl2,dstm] [-seed 42]
//	tmbench -exp e15 [-tms irtm,tl2,sgltm] [-seed 42]
//	tmbench -exp all        # every table with default parameters
//
// An unknown -exp or -clock value exits non-zero and lists the valid
// names.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	ptm "repro"
	"repro/internal/exp"
	"repro/stm"
	"repro/stm/norecstm"
)

func main() {
	var (
		expName   = flag.String("exp", "all", "experiment: e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11, e12, e13, e14, e15, or all")
		workers   = flag.Int("workers", 8, "goroutines for the native e8 ablation")
		dur       = flag.Duration("dur", 100*time.Millisecond, "wall-clock duration per e8 cell")
		clocks    = flag.String("clock", strings.Join(validClockSpecs, ","), "comma-separated native commit-pipeline specs for e8")
		tms       = flag.String("tms", strings.Join(ptm.Algorithms(), ","), "comma-separated TM algorithms")
		locks     = flag.String("locks", strings.Join(ptm.Locks(), ","), "comma-separated lock algorithms")
		models    = flag.String("models", strings.Join(ptm.CacheModels(), ","), "comma-separated cache models")
		ms        = flag.String("ms", "4,8,16,32,64", "comma-separated read-set sizes")
		ns        = flag.String("ns", "2,4,8,16,32", "comma-separated process counts")
		k         = flag.Int("k", 4, "acquisitions per process (e3/e4)")
		seed      = flag.Int64("seed", 42, "scheduling seed")
		adversary = flag.Bool("adversary", false, "run e1/e2 against the Lemma-2 adversary")
	)
	flag.Parse()

	cfg := config{
		tms:     split(*tms),
		locks:   split(*locks),
		models:  split(*models),
		ms:      ints(*ms),
		ns:      ints(*ns),
		k:       *k,
		seed:    *seed,
		adv:     *adversary,
		workers: *workers,
		dur:     *dur,
		clocks:  split(*clocks),
	}
	// Fail fast on a bad -clock spec regardless of -exp: a fat-fingered
	// pipeline name must not surface only after the earlier tables ran.
	for _, spec := range cfg.clocks {
		if _, ok := e8Variants[spec]; !ok {
			fmt.Fprintf(os.Stderr, "tmbench: unknown clock spec %q (valid: %s)\n",
				spec, strings.Join(validClockSpecs, ", "))
			os.Exit(1)
		}
	}
	var err error
	switch *expName {
	case "e1":
		err = runE1(cfg)
	case "e2":
		err = runE2(cfg)
	case "e3":
		err = runE3(cfg)
	case "e4":
		err = runE4(cfg)
	case "e5":
		err = runE5(cfg)
	case "e6":
		err = runE6(cfg)
	case "e7":
		err = runE7(cfg)
	case "e8":
		err = runE8(cfg)
	case "e9":
		err = runE9(cfg)
	case "e10":
		err = runE10(cfg)
	case "e11":
		err = runE11(cfg)
	case "e12":
		err = runE12(cfg)
	case "e13":
		err = runE13(cfg)
	case "e14":
		err = runE14(cfg)
	case "e15":
		err = runE15(cfg)
	case "class":
		err = runClass(cfg)
	case "mc":
		err = runMC(cfg)
	case "all":
		solo, adv := cfg, cfg
		solo.adv, adv.adv = false, true
		steps := []func() error{
			func() error { return runClass(cfg) },
			func() error { return runE1(solo) },
			func() error { return runE1(adv) },
			func() error { return runE2(solo) },
			func() error { return runE2(adv) },
			func() error { return runE3(cfg) },
			func() error { return runE4(cfg) },
			func() error { return runE5(cfg) },
			func() error { return runE6(cfg) },
			func() error { return runE7(cfg) },
			func() error { return runE8(cfg) },
			func() error { return runE9(cfg) },
			func() error { return runE10(cfg) },
			func() error { return runE11(cfg) },
			func() error { return runE12(cfg) },
			func() error { return runE13(cfg) },
			func() error { return runE14(cfg) },
			func() error { return runE15(cfg) },
		}
		for _, f := range steps {
			if err = f(); err != nil {
				break
			}
		}
	default:
		// Exit non-zero with the valid list: a fat-fingered -exp must not
		// look like a successful (empty) run.
		err = fmt.Errorf("unknown experiment %q (valid: %s)", *expName, strings.Join(validExperiments, ", "))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmbench:", err)
		os.Exit(1)
	}
}

// validExperiments lists every -exp value main dispatches on, for the
// unknown-experiment error.
var validExperiments = []string{
	"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12",
	"e13", "e14", "e15",
	"class", "mc", "all",
}

type config struct {
	tms, locks, models []string
	ms, ns             []int
	k                  int
	seed               int64
	adv                bool
	workers            int
	dur                time.Duration
	clocks             []string
}

func split(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func ints(s string) []int {
	var out []int
	for _, p := range split(s) {
		n, err := strconv.Atoi(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmbench: bad integer %q\n", p)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func modeLabel(adv bool) string {
	if adv {
		return "adversary"
	}
	return "solo"
}

// expandTL2 expands a requested TM list for the clock-ablation tables:
// "tl2" pulls in the full clock-variant sweep at its position, and
// duplicates (e.g. a variant requested explicitly alongside "tl2")
// collapse. Shared by the E5/E9/E10 sweeps so the variant axis cannot
// drift between tables.
func expandTL2(tms []string) []string {
	seen := map[string]bool{}
	var out []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, name := range tms {
		add(name)
		if name == "tl2" {
			for _, variant := range ptm.ClockVariants() {
				add(variant)
			}
		}
	}
	return out
}

func runE1(c config) error {
	t := ptm.Table{
		Title:  fmt.Sprintf("E1 (Theorem 3(1)) — reader steps, %s", modeLabel(c.adv)),
		Header: []string{"tm", "m", "attempts", "total-steps", "last-read-steps", "m(m-1)/2"},
	}
	for _, name := range c.tms {
		rows, err := ptm.RunE1(name, c.ms, c.adv)
		if err != nil {
			if c.adv {
				fmt.Fprintf(os.Stderr, "tmbench: skipping %s: %v\n", name, err)
				continue
			}
			return err
		}
		for _, r := range rows {
			t.Add(r.TM, r.M, r.Attempts, r.TotalSteps, r.LastReadSteps, uint64(r.M)*uint64(r.M-1)/2)
		}
	}
	ptm.PrintTable(os.Stdout, &t)
	return nil
}

func runE2(c config) error {
	t := ptm.Table{
		Title:  fmt.Sprintf("E2 (Theorem 3(2)) — distinct base objects in last read + tryC, %s", modeLabel(c.adv)),
		Header: []string{"tm", "m", "distinct-objects", "bound(m-1)"},
	}
	for _, name := range c.tms {
		rows, err := ptm.RunE2(name, c.ms, c.adv)
		if err != nil {
			if c.adv {
				fmt.Fprintf(os.Stderr, "tmbench: skipping %s: %v\n", name, err)
				continue
			}
			return err
		}
		for _, r := range rows {
			t.Add(r.TM, r.M, r.DistinctObjs, r.Bound)
		}
	}
	ptm.PrintTable(os.Stdout, &t)
	return nil
}

func runE3(c config) error {
	for _, model := range c.models {
		t := ptm.Table{
			Title:  fmt.Sprintf("E3 (Theorem 9) — RMRs, model=%s, k=%d", model, c.k),
			Header: []string{"lock", "n", "total-rmrs", "rmrs/acq", "nk·log2(n)", "violations"},
		}
		for _, lock := range c.locks {
			rows, err := ptm.RunE3(lock, model, c.ns, c.k, c.seed)
			if err != nil {
				return err
			}
			for _, r := range rows {
				t.Add(r.Lock, r.N, r.TotalRMRs, r.PerAcq, r.NLogN, r.Violations)
			}
		}
		ptm.PrintTable(os.Stdout, &t)
	}
	return nil
}

func runE4(c config) error {
	for _, model := range c.models {
		t := ptm.Table{
			Title:  fmt.Sprintf("E4 (Theorem 7) — L(M) RMR split, model=%s, k=%d", model, c.k),
			Header: []string{"lock", "n", "tm-rmrs", "handoff-rmrs", "handoff-rmrs/acq"},
		}
		for _, lock := range c.locks {
			if !strings.HasPrefix(lock, "lm:") {
				continue
			}
			rows, err := ptm.RunE4(lock, model, c.ns, c.k, c.seed)
			if err != nil {
				return err
			}
			for _, r := range rows {
				t.Add(r.Lock, r.N, r.TMRMRs, r.HandoffRMRs, r.HandoffPerAcq)
			}
		}
		ptm.PrintTable(os.Stdout, &t)
	}
	return nil
}

// runMC runs the exhaustive (bounded-preemption) mutual-exclusion model
// check for each lock, two processes, one acquisition each.
func runMC(c config) error {
	t := ptm.Table{
		Title:  "MC — exhaustive mutual-exclusion check (n=2, k=1, ≤2 preemptions)",
		Header: []string{"lock", "runs", "truncated", "exhausted", "violation"},
	}
	for _, lockName := range c.locks {
		lockName := lockName
		build := func() (*ptm.Scheduler, func() error) {
			mem := ptm.NewMemory(2, "")
			lock, err := ptm.NewLock(lockName, mem)
			if err != nil {
				panic(err)
			}
			scratch := mem.Alloc("cs.scratch")
			inCS := 0
			s := ptm.NewScheduler(mem)
			for i := 0; i < 2; i++ {
				s.Go(i, func(p *ptm.Proc) {
					lock.Enter(p)
					inCS++
					if inCS > 1 {
						panic("mutual exclusion violated")
					}
					p.Read(scratch)
					inCS--
					lock.Exit(p)
				})
			}
			return s, func() error { return nil }
		}
		res, err := ptm.Explore(build, ptm.ExploreOpts{MaxPreemptions: 2, MaxRuns: 60_000})
		violation := "none"
		if err != nil {
			violation = err.Error()
			if len(violation) > 48 {
				violation = violation[:48] + "…"
			}
		}
		t.Add(lockName, res.Runs, res.Truncated, res.Exhausted, violation)
	}
	ptm.PrintTable(os.Stdout, &t)
	return nil
}

func runClass(c config) error {
	t := ptm.Table{
		Title: "TM taxonomy — measured class membership (✗ = counterexample found)",
		Header: []string{"tm", "weak-dap", "inv-reads", "weak-inv-reads",
			"progressive", "strong-1item", "opaque", "declared"},
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "✗"
	}
	for _, name := range c.tms {
		row, err := exp.Classify(name, 6)
		if err != nil {
			return err
		}
		t.Add(row.TM, mark(row.WeakDAP), mark(row.InvisibleReads), mark(row.WeakInvisibleReads),
			mark(row.Progressive), mark(row.StrongSingleItem), mark(row.Opaque), row.Declared.String())
	}
	ptm.PrintTable(os.Stdout, &t)
	return nil
}

func runE5(c config) error {
	t := ptm.Table{
		Title:  "E5 — contention sweep: abort ratio and steps per committed txn",
		Header: []string{"tm", "write-ratio", "commits", "aborts", "abort-ratio", "steps/txn", "base-objects"},
	}
	cfg := exp.DefaultE5Config()
	cfg.Seed = c.seed
	// expandTL2 inserts the clock-strategy axis (the GV4/GV6 / timestamp-
	// extension variants) right after the base tl2 row.
	for _, name := range expandTL2(c.tms) {
		rows, err := exp.RunE5(name, cfg)
		if err != nil {
			return err
		}
		for _, r := range rows {
			t.Add(r.TM, r.WriteRatio, r.Commits, r.Aborts, r.AbortRatio, r.StepsPerTxn, r.Space)
		}
		if name == "dstm" || name == "vrtm" {
			// The contention-management ablation: the same sweep with
			// exponential backoff between retries.
			bcfg := cfg
			bcfg.Backoff = true
			rows, err := exp.RunE5(name, bcfg)
			if err != nil {
				return err
			}
			for _, r := range rows {
				t.Add(r.TM+"+backoff", r.WriteRatio, r.Commits, r.Aborts, r.AbortRatio, r.StepsPerTxn, r.Space)
			}
		}
	}
	ptm.PrintTable(os.Stdout, &t)
	return nil
}

// e8Variant is one native commit-pipeline configuration the -clock flag
// can request for E8.
type e8Variant struct {
	label string // table row label
	strat stm.ClockStrategy
	ext   bool
}

// validClockSpecs lists every -clock spec, in default sweep order;
// e8Variants resolves each to its engine configuration. The gv1 row with
// extension off is the PR 1 pipeline; gv7+ext is the batched-block
// allocator; tictoc abandons the global clock for per-access timestamp
// intervals (its "ext/revals" column counts interval advances).
var validClockSpecs = []string{"gv1", "gv1+ext", "gv4+ext", "gv6+ext", "gv7+ext", "tictoc"}

var e8Variants = map[string]e8Variant{
	"gv1":     {"tl2/gv1", stm.GV1, false},
	"gv1+ext": {"tl2/gv1+ext", stm.GV1, true},
	"gv4+ext": {"tl2/gv4+ext", stm.GV4, true},
	"gv6+ext": {"tl2/gv6+ext", stm.GV6, true},
	"gv7+ext": {"tl2/gv7+ext", stm.GV7, true},
	"tictoc":  {"tictoc", stm.TicToc, true},
}

// setPipeline applies one variant's knobs in the order the cross-knob
// guards allow: GV6/GV7 refuse to be selected while extension is off, and
// extension refuses to go off while GV6/GV7 is selected, so the enabling
// knob always moves first.
func setPipeline(v e8Variant) {
	if v.ext {
		stm.SetTimestampExtension(true)
		stm.SetClockStrategy(v.strat)
	} else {
		stm.SetClockStrategy(v.strat)
		stm.SetTimestampExtension(false)
	}
}

// runE8 measures the native engines for wall-clock throughput: the
// commit-pipeline ablation across clock strategies (-clock selects the
// rows), against NOrec, on a contended-counter and a bank-transfer
// workload. Each cell's Vars are created after its pipeline is selected,
// which is what makes the tictoc row safe: TicToc reinterprets the
// lock-word payload and must never see versioned payloads.
func runE8(c config) error {
	t := ptm.Table{
		Title: fmt.Sprintf("E8 — native commit pipeline: clock strategy × extension (%d goroutines, %v/cell; ext-or-revalidations in last column)",
			c.workers, c.dur),
		Header: []string{"engine", "workload", "txns/sec", "commits", "aborts", "abort-ratio", "ext/revals"},
	}
	defer stm.SetClockStrategy(stm.GV4)
	defer stm.SetTimestampExtension(true)
	for _, spec := range c.clocks {
		v := e8Variants[spec] // validated in main
		setPipeline(v)
		for _, wl := range []string{"counter", "bank"} {
			before := stm.ReadStats()
			elapsed := e8DriveTL2(wl, c.workers, c.dur)
			d := stm.ReadStats().Sub(before)
			t.Add(v.label, wl, float64(d.Commits)/elapsed.Seconds(),
				d.Commits, d.Aborts, d.AbortRatio(), d.Extensions)
		}
	}
	for _, wl := range []string{"counter", "bank"} {
		before := norecstm.ReadStats()
		elapsed := e8DriveNorec(wl, c.workers, c.dur)
		d := norecstm.ReadStats().Sub(before)
		t.Add("norec", wl, float64(d.Commits)/elapsed.Seconds(),
			d.Commits, d.Aborts, d.AbortRatio(), d.Revalidations)
	}
	ptm.PrintTable(os.Stdout, &t)
	return nil
}

// e8DriveTL2 runs the named workload on the repro/stm engine for roughly
// the given duration and returns the exact elapsed wall time.
func e8DriveTL2(workload string, workers int, d time.Duration) time.Duration {
	const accounts = 256
	vars := make([]*stm.Var[int], accounts)
	for i := range vars {
		vars[i] = stm.NewVar(1000)
	}
	ctr := stm.NewVar(0)
	start := time.Now()
	deadline := start.Add(d)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := uint64(g)*2654435761 + 1
			for n := 0; time.Now().Before(deadline); n++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				switch workload {
				case "counter":
					_ = stm.Atomically(func(tx *stm.Tx) error {
						ctr.Set(tx, ctr.Get(tx)+1)
						return nil
					})
				default: // bank: 90% two-account transfers, 10% 8-account audits
					from := int(rng>>33) % accounts
					to := (from + 1 + int(rng>>13)%(accounts-1)) % accounts
					if n%10 == 0 {
						_ = stm.Atomically(func(tx *stm.Tx) error {
							s := 0
							for j := 0; j < 8; j++ {
								s += vars[(from+j)%accounts].Get(tx)
							}
							_ = s
							return nil
						})
					} else {
						_ = stm.Atomically(func(tx *stm.Tx) error {
							f := vars[from].Get(tx)
							vars[from].Set(tx, f-1)
							vars[to].Set(tx, vars[to].Get(tx)+1)
							return nil
						})
					}
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

// e8DriveNorec is e8DriveTL2 for the repro/stm/norecstm engine.
func e8DriveNorec(workload string, workers int, d time.Duration) time.Duration {
	const accounts = 256
	vars := make([]*norecstm.Var[int], accounts)
	for i := range vars {
		vars[i] = norecstm.NewVar(1000)
	}
	ctr := norecstm.NewVar(0)
	start := time.Now()
	deadline := start.Add(d)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := uint64(g)*2654435761 + 1
			for n := 0; time.Now().Before(deadline); n++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				switch workload {
				case "counter":
					_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
						ctr.Set(tx, ctr.Get(tx)+1)
						return nil
					})
				default:
					from := int(rng>>33) % accounts
					to := (from + 1 + int(rng>>13)%(accounts-1)) % accounts
					if n%10 == 0 {
						_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
							s := 0
							for j := 0; j < 8; j++ {
								s += vars[(from+j)%accounts].Get(tx)
							}
							_ = s
							return nil
						})
					} else {
						_ = norecstm.Atomically(func(tx *norecstm.Tx) error {
							f := vars[from].Get(tx)
							vars[from].Set(tx, f-1)
							vars[to].Set(tx, vars[to].Get(tx)+1)
							return nil
						})
					}
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

// runE9 prints the STAMP-style scenario suite (index-scan, reservation)
// for every requested TM, with the TL2 clock-strategy variants swept after
// the base tl2 row, as in E5.
func runE9(c config) error {
	t := ptm.Table{
		Title:  "E9 — scenario suite: ordered-index scans and two-table reservations",
		Header: []string{"tm", "scenario", "commits", "aborts", "abort-ratio", "steps/txn"},
	}
	cfg := exp.DefaultE9Config()
	cfg.Seed = c.seed
	for _, name := range expandTL2(c.tms) {
		rows, err := ptm.RunE9(name, cfg)
		if err != nil {
			return err
		}
		for _, r := range rows {
			t.Add(r.TM, r.Scenario, r.Commits, r.Aborts, r.AbortRatio, r.StepsPerTxn)
		}
	}
	ptm.PrintTable(os.Stdout, &t)
	return nil
}

// runE10 prints the read-mostly serving scenario (Zipf hot-key gets and
// ordered scans racing a small writer pool) for every requested TM. The
// TL2 family is swept twice — with and without the read-only declaration —
// so the table shows what the zero-validation RO mode trades: extension
// revalidations for abort/replay.
func runE10(c config) error {
	t := ptm.Table{
		Title:  "E10 — read-mostly serving: Zipf hot-key gets + ordered scans vs a writer pool",
		Header: []string{"tm", "ro", "commits", "aborts", "abort-ratio", "steps/txn"},
	}
	cfg := exp.DefaultE10Config()
	cfg.Seed = c.seed
	add := func(name string, declare bool) error {
		rcfg := cfg
		rcfg.DeclareRO = declare
		row, err := ptm.RunE10(name, rcfg)
		if err != nil {
			return err
		}
		t.Add(row.TM, row.ROHint, row.Commits, row.Aborts, row.AbortRatio, row.StepsPerTxn)
		return nil
	}
	// Every TL2-family name is swept both undeclared and declared —
	// including explicitly requested variants like "-tms tl2:gv6+ext".
	for _, name := range expandTL2(c.tms) {
		if err := add(name, false); err != nil {
			return err
		}
		if name == "tl2" || strings.HasPrefix(name, "tl2:") {
			if err := add(name, true); err != nil {
				return err
			}
		}
	}
	ptm.PrintTable(os.Stdout, &t)
	return nil
}

// runE11 prints the long-scan/HTAP scenario (long ordered scans and
// multi-key aggregates racing a writer pool) for every requested TM — the
// table where the multi-version rows (mvtm, mvtm-gc) show zero read-side
// aborts while the single-version TMs pay validation steps or
// abort/replay, and the space column shows what that costs. The TL2
// clock variants are swept after the base tl2 row, as in E5/E9/E10.
func runE11(c config) error {
	t := ptm.Table{
		Title:  "E11 — HTAP long scans: ordered scans + multi-key aggregates vs a writer pool",
		Header: []string{"tm", "ro", "commits", "aborts", "read-aborts", "abort-ratio", "steps/txn", "scan-steps", "space"},
	}
	cfg := exp.DefaultE11Config()
	cfg.Seed = c.seed
	for _, name := range expandTL2(c.tms) {
		row, err := ptm.RunE11(name, cfg)
		if err != nil {
			return err
		}
		t.Add(row.TM, row.ROHint, row.Commits, row.Aborts, row.ReadAborts,
			row.AbortRatio, row.StepsPerTxn, row.ScanSteps, row.Space)
	}
	ptm.PrintTable(os.Stdout, &t)
	return nil
}

// runE12 prints the hostile-tenant scenario twice per TM: one unmetered
// row (hostile full-table scans retried to completion) and one metered
// row (each scan charged per step against a grant of half a scan, so
// every hostile attempt is refused). Reading a row pair left to right:
// the victim columns show what the tenants cost the writer pool, the
// hostile columns show the tenants' own outcome flipping from "commits
// everything" to "refused everywhere", and hostile-steps shows the load
// the budget sheds. The TL2 clock variants are swept after the base tl2
// row, as in E5/E9–E11.
func runE12(c config) error {
	t := ptm.Table{
		Title: "E12 — hostile tenants: unbounded scans vs point writers, unmetered then metered",
		Header: []string{"tm", "metered", "victim-commits", "victim-aborts", "victim-steps/txn",
			"hostile-commits", "hostile-refused", "hostile-steps", "space"},
	}
	cfg := exp.DefaultE12Config()
	cfg.Seed = c.seed
	for _, name := range expandTL2(c.tms) {
		for _, budget := range []uint64{0, cfg.StepBudget} {
			run := cfg
			run.StepBudget = budget
			row, err := ptm.RunE12(name, run)
			if err != nil {
				return err
			}
			t.Add(row.TM, row.Metered, row.VictimCommits, row.VictimAborts, row.VictimStepsPerTxn,
				row.HostileCommits, row.HostileBudgetAborts, row.HostileSteps, row.Space)
		}
	}
	ptm.PrintTable(os.Stdout, &t)
	return nil
}

// runE13 prints the graph-routing scenario twice per TM: one unmetered
// row (routes retried or replanned to resolution) and one metered row
// (each attempt charged against a step grant sized for a short route, so
// long routes are refused mid-path). Routed + replanned + refused always
// equals the route quota; claimed-cells prices the committed write sets.
// The TL2 clock variants are swept after the base tl2 row, as in E5/E9–E12.
func runE13(c config) error {
	t := ptm.Table{
		Title: "E13 — graph routing: long speculative paths, write sets as large as read sets",
		Header: []string{"tm", "metered", "routed", "replanned", "refused", "aborts",
			"claimed-cells", "steps/route", "space"},
	}
	cfg := exp.DefaultE13Config()
	cfg.Seed = c.seed
	// The metered grant covers roughly one grid side of reads+writes: long
	// L-paths charge out, short ones fit.
	metered := cfg
	metered.StepBudget = uint64(cfg.GridW)
	for _, name := range expandTL2(c.tms) {
		for _, run := range []exp.E13Config{cfg, metered} {
			row, err := ptm.RunE13(name, run)
			if err != nil {
				return err
			}
			t.Add(row.TM, row.Metered, row.Routed, row.Replanned, row.Refused,
				row.Aborts, row.ClaimedCells, row.StepsPerTxn, row.Space)
		}
	}
	ptm.PrintTable(os.Stdout, &t)
	return nil
}

// runE14 prints the clustering scenario for every requested TM: K shared
// centroid accumulators take the whole assignment stream, so the
// abort-ratio column is the contention-management story (dstm's mutual
// aborts vs tl2's lazy locking vs sgltm's serialization), and recenters
// counts the full-width reader passes racing the stream. The TL2 clock
// variants are swept after the base tl2 row, as in E5/E9–E13.
func runE14(c config) error {
	t := ptm.Table{
		Title:  "E14 — clustering: high-contention point RMWs on K shared accumulators",
		Header: []string{"tm", "centroids", "commits", "aborts", "abort-ratio", "recenters", "steps/txn", "space"},
	}
	cfg := exp.DefaultE14Config()
	cfg.Seed = c.seed
	for _, name := range expandTL2(c.tms) {
		row, err := ptm.RunE14(name, cfg)
		if err != nil {
			return err
		}
		t.Add(row.TM, row.Centroids, row.Commits, row.Aborts, row.AbortRatio,
			row.Recenters, row.StepsPerTxn, row.Space)
	}
	ptm.PrintTable(os.Stdout, &t)
	return nil
}

// runE15 prints the producer/consumer pipeline for every requested TM: a
// queue much smaller than the item flow, so the full-polls and
// empty-polls columns price the backpressure and starvation probing each
// TM's serialization order produces (the simulator has no Retry; the
// native stm.Queue benchmark blocks instead). The TL2 clock variants are
// swept after the base tl2 row, as in E5/E9–E14.
func runE15(c config) error {
	t := ptm.Table{
		Title: "E15 — pipeline: producers/consumers over a bounded transactional queue",
		Header: []string{"tm", "prod", "cons", "produced", "consumed", "full-polls",
			"empty-polls", "aborts", "steps/item", "space"},
	}
	cfg := exp.DefaultE15Config()
	cfg.Seed = c.seed
	for _, name := range expandTL2(c.tms) {
		row, err := ptm.RunE15(name, cfg)
		if err != nil {
			return err
		}
		t.Add(row.TM, row.Producers, row.Consumers, row.Produced, row.Consumed,
			row.FullPolls, row.EmptyPolls, row.Aborts, row.StepsPerItem, row.Space)
	}
	ptm.PrintTable(os.Stdout, &t)
	return nil
}

func runE6(c config) error {
	rows, err := ptm.RunE6(c.ms)
	if err != nil {
		return err
	}
	t := ptm.Table{
		Title:  "E6 (Section 6) — irtm tightness vs m(m-1)/2 + 3m",
		Header: []string{"m", "measured-steps", "formula", "match"},
	}
	for _, r := range rows {
		t.Add(r.M, r.Measured, r.Formula, r.Measured == r.Formula)
	}
	ptm.PrintTable(os.Stdout, &t)
	return nil
}

func runE7(c config) error {
	t := ptm.Table{
		Title:  "E7 — randomized contention: progress and correctness checks",
		Header: []string{"tm", "committed", "aborted", "progress-viol", "strong-viol", "opaque", "strict-ser"},
	}
	for _, name := range c.tms {
		row, err := ptm.RunE7(name, exp.E7Config{
			Procs: 4, TxnsPerProc: 4, Objects: 4, OpsPerTxn: 3,
			WriteRatio: 0.5, Seed: c.seed, CheckOpacity: true,
		})
		if err != nil {
			return err
		}
		t.Add(row.TM, row.Committed, row.Aborted, row.ProgressViolations, row.StrongViolations, row.Opaque, row.StrictSerializable)
	}
	ptm.PrintTable(os.Stdout, &t)
	return nil
}
