// Command benchjson converts `go test -bench` text output into the
// committed benchmark-baseline JSON (BENCH_PRn.json): one record per
// benchmark aggregating the -count runs into mean/min/max per metric.
// Standard library only, so the bench-baseline make target and the CI
// delta job work in a hermetic container.
//
// Usage:
//
//	go test -bench ... -count 5 ./... | benchjson -label PR2 -out BENCH_PR2.json
//	benchjson -in bench_e8.txt -label PR2 -out BENCH_PR2.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/benchfmt"
)

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "output JSON file (default stdout)")
	label := flag.String("label", "", "baseline label recorded in the file (e.g. PR2)")
	command := flag.String("command", "", "the benchmark command recorded for reproducibility")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	base, err := benchfmt.Parse(r)
	if err != nil {
		fatal(err)
	}
	base.Label = *label
	base.Command = *command
	base.Go = runtime.Version()
	if base.GOOS == "" {
		base.GOOS = runtime.GOOS
	}
	if base.GOARCH == "" {
		base.GOARCH = runtime.GOARCH
	}
	enc, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
