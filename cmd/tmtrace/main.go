// Command tmtrace runs a randomized concurrent workload on one TM
// algorithm and prints the execution as a step-level timeline — every
// t-operation with its response and the base objects the TM touched to
// implement it — followed by the correctness verdicts. It is the
// microscope for understanding *why* irtm's reads get more expensive as
// the read set grows, where TL2's clock contention comes from, or what a
// conflict abort actually looked like.
//
// Usage:
//
//	tmtrace [-tm irtm] [-procs 2] [-objects 3] [-txns 2] [-ops 3] [-seed 42] [-writes 0.4]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	ptm "repro"
	"repro/internal/exp"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/tm"
	"repro/internal/tmreg"
)

func main() {
	var (
		tmName  = flag.String("tm", "irtm", "TM algorithm")
		procs   = flag.Int("procs", 2, "processes")
		objects = flag.Int("objects", 3, "t-objects")
		txns    = flag.Int("txns", 2, "transactions per process")
		ops     = flag.Int("ops", 3, "operations per transaction")
		writes  = flag.Float64("writes", 0.4, "write probability per operation")
		seed    = flag.Int64("seed", 42, "workload and scheduling seed")
	)
	flag.Parse()

	mem := memory.New(*procs, nil)
	base, err := tmreg.New(*tmName, mem, *objects)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmtrace:", err)
		os.Exit(1)
	}
	rec := tm.Record(base)
	s := sched.New(mem)
	for i := 0; i < *procs; i++ {
		i := i
		rng := rand.New(rand.NewSource(*seed + int64(i)*104729))
		s.Go(i, func(p *memory.Proc) {
			for n := 0; n < *txns; n++ {
				tx := rec.Begin(p)
				alive := true
				for o := 0; o < *ops && alive; o++ {
					x := rng.Intn(*objects)
					if rng.Float64() < *writes {
						alive = tx.Write(x, uint64(rng.Intn(90)+10)) == nil
					} else {
						_, err := tx.Read(x)
						alive = err == nil
					}
				}
				if alive {
					_ = tx.Commit()
				} else {
					tx.Abort()
				}
			}
		})
	}
	if err := s.Run(sched.NewRandom(*seed)); err != nil {
		fmt.Fprintln(os.Stderr, "tmtrace:", err)
		os.Exit(1)
	}

	h := rec.History()
	fmt.Printf("tm=%s procs=%d objects=%d txns/proc=%d seed=%d\n\n", *tmName, *procs, *objects, *txns, *seed)
	exp.FormatHistory(os.Stdout, mem, h)
	fmt.Println()
	fmt.Printf("strictly serializable: %v\n", ptm.IsStrictlySerializable(h))
	fmt.Printf("opaque:                %v\n", ptm.IsOpaque(h))
	if v := ptm.ProgressivenessViolations(h); len(v) > 0 {
		fmt.Printf("progressiveness:       VIOLATED %v\n", v)
	} else {
		fmt.Printf("progressiveness:       ok\n")
	}
	fmt.Printf("total steps: %d\n", mem.TotalSteps())
}
