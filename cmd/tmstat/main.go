// Command tmstat is the live observability view over a running tmserve:
// it polls GET /stats once per interval and renders per-interval deltas
// — request/error rates, commit and abort rates with the abort ratio
// broken down by the engines' abort-reason taxonomy, clock-strategy
// counters, and the hottest contention keys when the server runs with
// -profile.
//
//	tmstat -url http://host:8080 -interval 1s
//	tmstat -url http://host:8080 -n 5    # five ticks, then exit
//	tmstat -demo                         # self-contained: in-process server + load
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
)

// payload mirrors the /stats JSON the serving tier emits.
type payload struct {
	Engine    string                          `json:"engine"`
	Shards    int                             `json:"shards"`
	ShardKeys []int                           `json:"shard_keys"`
	Counters  server.Stats                    `json:"counters"`
	Endpoints map[string]server.EndpointStats `json:"endpoints"`
	HotKeys   []telemetry.Entry               `json:"hot_keys"`
}

func main() {
	var (
		url      = flag.String("url", "http://localhost:8080", "tmserve base URL")
		interval = flag.Duration("interval", time.Second, "poll interval")
		n        = flag.Int("n", 0, "number of ticks to render (0 = until interrupted)")
		demo     = flag.Bool("demo", false, "ignore -url; watch an in-process profiled server under synthetic load")
	)
	flag.Parse()
	base := *url
	ticks := *n
	if *demo {
		ts, stop, err := startDemo()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmstat:", err)
			os.Exit(2)
		}
		defer stop()
		base = ts
		if ticks == 0 {
			ticks = 5
		}
	}
	if err := watch(os.Stdout, base, *interval, ticks); err != nil {
		fmt.Fprintln(os.Stderr, "tmstat:", err)
		os.Exit(1)
	}
}

// watch polls base/stats every interval and renders deltas; ticks = 0
// runs until the process is interrupted.
func watch(w io.Writer, base string, interval time.Duration, ticks int) error {
	client := &http.Client{Timeout: 10 * time.Second}
	prev, err := fetch(client, base)
	if err != nil {
		return err
	}
	last := time.Now()
	for i := 0; ticks == 0 || i < ticks; i++ {
		time.Sleep(interval)
		cur, err := fetch(client, base)
		if err != nil {
			return err
		}
		now := time.Now()
		render(w, prev, cur, now.Sub(last))
		prev, last = cur, now
	}
	return nil
}

// fetch reads one /stats snapshot.
func fetch(client *http.Client, base string) (payload, error) {
	var p payload
	resp, err := client.Get(strings.TrimSuffix(base, "/") + "/stats")
	if err != nil {
		return p, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return p, fmt.Errorf("/stats: status %d", resp.StatusCode)
	}
	return p, json.NewDecoder(resp.Body).Decode(&p)
}

// render writes one tick: rates are (cur-prev)/dt, hot keys and shard
// sizes are the current cumulative reading.
func render(w io.Writer, prev, cur payload, dt time.Duration) {
	secs := dt.Seconds()
	if secs <= 0 {
		secs = 1
	}
	rate := func(cur, prev uint64) float64 { return float64(cur-prev) / secs }

	var reqs, errs, preqs, perrs uint64
	for _, e := range cur.Endpoints {
		reqs += e.Count
		errs += e.Errors
	}
	for _, e := range prev.Endpoints {
		preqs += e.Count
		perrs += e.Errors
	}
	keys := 0
	for _, n := range cur.ShardKeys {
		keys += n
	}
	dCommit := cur.Counters.Commits - prev.Counters.Commits
	dAbort := cur.Counters.Aborts - prev.Counters.Aborts
	ratio := 0.0
	if dCommit+dAbort > 0 {
		ratio = float64(dAbort) / float64(dCommit+dAbort)
	}
	fmt.Fprintf(w, "%s engine=%s shards=%d keys=%d | req/s=%.0f err/s=%.0f | commit/s=%.0f abort/s=%.0f abort%%=%.1f\n",
		time.Now().Format("15:04:05"), cur.Engine, cur.Shards, keys,
		rate(reqs, preqs), rate(errs, perrs),
		rate(cur.Counters.Commits, prev.Counters.Commits),
		rate(cur.Counters.Aborts, prev.Counters.Aborts),
		100*ratio)

	if len(cur.Counters.AbortReasons) > 0 {
		names := make([]string, 0, len(cur.Counters.AbortReasons))
		for k := range cur.Counters.AbortReasons {
			names = append(names, k)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, k := range names {
			parts = append(parts, fmt.Sprintf("%s=%.0f", k, rate(cur.Counters.AbortReasons[k], prev.Counters.AbortReasons[k])))
		}
		fmt.Fprintf(w, "  reasons/s: %s\n", strings.Join(parts, " "))
	}

	c, p := cur.Counters, prev.Counters
	if c.Extensions+c.ClockIncrements+c.ClockAdoptions+c.ClockBlockClaims+c.RTSAdvances > 0 {
		fmt.Fprintf(w, "  clock/s: incr=%.0f adopt=%.0f ext=%.0f blocks=%.0f rts=%.0f\n",
			rate(c.ClockIncrements, p.ClockIncrements),
			rate(c.ClockAdoptions, p.ClockAdoptions),
			rate(c.Extensions, p.Extensions),
			rate(c.ClockBlockClaims, p.ClockBlockClaims),
			rate(c.RTSAdvances, p.RTSAdvances))
	}

	if len(cur.HotKeys) > 0 {
		parts := make([]string, 0, 5)
		for i, e := range cur.HotKeys {
			if i == 5 {
				break
			}
			name := e.Label
			if name == "" {
				name = fmt.Sprintf("var-%d", e.ID)
			}
			parts = append(parts, fmt.Sprintf("%s=%d", name, e.Count))
		}
		fmt.Fprintf(w, "  hot: %s\n", strings.Join(parts, " "))
	}
}

// startDemo builds a profiled in-process server, aims a small synthetic
// contended workload at its router, and returns the server's URL plus a
// stop function. The workload is transfer batches over a Zipf-hot
// keyspace — enough write-write conflict to light up every panel tmstat
// renders.
func startDemo() (url string, stop func(), err error) {
	srv, err := server.New(server.Config{Shards: 2, Engine: "stm", ProfileK: 32, ProfileSample: 1, LatencySample: 8})
	if err != nil {
		return "", nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	done := make(chan struct{})
	const demoKeys = 64
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			zipf := rand.NewZipf(r, 1.3, 1, demoKeys-1)
			for {
				select {
				case <-done:
					return
				default:
				}
				a, b := zipf.Uint64(), zipf.Uint64()
				if a == b {
					b = (b + 1) % demoKeys
				}
				_, _ = srv.Router().Batch([]server.Op{
					{Kind: "add", Key: fmt.Sprintf("demo%03d", a), Delta: -1},
					{Kind: "add", Key: fmt.Sprintf("demo%03d", b), Delta: 1},
				})
			}
		}(int64(w))
	}
	return ts.URL, func() { close(done); ts.Close() }, nil
}
