package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestWatchDemo drives the whole pipeline — demo server, synthetic load,
// /stats polling, delta rendering — for two fast ticks and checks every
// panel appears: header rates, the abort-reason taxonomy, clock
// counters, and hot keys (the demo runs profiled over a Zipf-hot
// keyspace, so contention is all but guaranteed; the hot panel is only
// required when aborts actually happened).
func TestWatchDemo(t *testing.T) {
	url, stop, err := startDemo()
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	var out bytes.Buffer
	if err := watch(&out, url, 50*time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	t.Log("\n" + got)
	for _, want := range []string{"engine=stm", "req/s=", "commit/s=", "abort%=", "reasons/s:", "commit_validation="} {
		if !strings.Contains(got, want) {
			t.Fatalf("tmstat output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "abort/s=") && !strings.Contains(got, "abort/s=0 ") {
		if !strings.Contains(got, "hot: ") {
			t.Fatalf("aborts flowed but no hot-key panel:\n%s", got)
		}
	}
	if lines := strings.Count(got, "engine=stm"); lines != 2 {
		t.Fatalf("rendered %d ticks, want 2:\n%s", lines, got)
	}
}

// TestRenderFirstTick: rendering against an all-zero previous snapshot
// (the first tick) must not divide by zero or print NaN.
func TestRenderFirstTick(t *testing.T) {
	var out bytes.Buffer
	cur := payload{Engine: "mvstm", Shards: 1, ShardKeys: []int{3}}
	render(&out, payload{}, cur, 0)
	got := out.String()
	if strings.Contains(got, "NaN") || strings.Contains(got, "Inf") {
		t.Fatalf("render with zero interval produced NaN/Inf: %s", got)
	}
	if !strings.Contains(got, "engine=mvstm") {
		t.Fatalf("missing header: %s", got)
	}
}
