package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunLoadSmoke drives the full generator — preload, mixed workload,
// table — against in-process servers at two shard counts, sized for CI.
func TestRunLoadSmoke(t *testing.T) {
	for _, engine := range []string{"stm", "mvstm"} {
		t.Run(engine, func(t *testing.T) {
			cfg := config{
				shards:  []int{1, 4},
				engine:  engine,
				clients: 4,
				keys:    1_000,
				ops:     1_000,
				read:    0.90,
				scan:    0.05,
				scanLen: 20,
				zipf:    1.1,
				preload: 250,
				seed:    1,
			}
			var out bytes.Buffer
			if err := runLoad(cfg, &out); err != nil {
				t.Fatal(err)
			}
			got := out.String()
			t.Log("\n" + got)
			lines := strings.Split(strings.TrimSpace(got), "\n")
			// Header banner + column header + one row per shard count.
			if len(lines) != 2+len(cfg.shards) {
				t.Fatalf("table has %d lines, want %d:\n%s", len(lines), 2+len(cfg.shards), got)
			}
			for i, n := range []string{"1", "4"} {
				if !strings.HasPrefix(lines[2+i], n) {
					t.Fatalf("row %d = %q, want shard count %s first", i, lines[2+i], n)
				}
			}
			if strings.Contains(got, "NaN") {
				t.Fatalf("table contains NaN:\n%s", got)
			}
		})
	}
}

// TestRunLoadReportsErrors: a run against a rate-limited server must
// complete and count its 429 refusals rather than failing.
func TestRunLoadReportsErrors(t *testing.T) {
	cfg := config{
		shards:  []int{1},
		engine:  "stm",
		clients: 2,
		keys:    200,
		ops:     200,
		read:    1.0, // all gets: preload stays under the limiter's radar
		scanLen: 10,
		zipf:    1.1,
		preload: 250,
		seed:    1,
	}
	var out bytes.Buffer
	if err := runLoad(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1") {
		t.Fatalf("no table row:\n%s", out.String())
	}
}
