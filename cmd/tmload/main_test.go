package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/server"
)

// TestRunLoadSmoke drives the full generator — preload, mixed workload,
// table — against in-process servers at two shard counts, sized for CI.
func TestRunLoadSmoke(t *testing.T) {
	for _, engine := range []string{"stm", "mvstm"} {
		t.Run(engine, func(t *testing.T) {
			cfg := config{
				shards:  []int{1, 4},
				engine:  engine,
				clients: 4,
				keys:    1_000,
				ops:     1_000,
				read:    0.90,
				scan:    0.05,
				scanLen: 20,
				zipf:    1.1,
				preload: 250,
				seed:    1,
			}
			var out bytes.Buffer
			if err := runLoad(cfg, &out); err != nil {
				t.Fatal(err)
			}
			got := out.String()
			t.Log("\n" + got)
			lines := strings.Split(strings.TrimSpace(got), "\n")
			// Header banner + column header + one row per shard count.
			if len(lines) != 2+len(cfg.shards) {
				t.Fatalf("table has %d lines, want %d:\n%s", len(lines), 2+len(cfg.shards), got)
			}
			for i, n := range []string{"1", "4"} {
				if !strings.HasPrefix(lines[2+i], n) {
					t.Fatalf("row %d = %q, want shard count %s first", i, lines[2+i], n)
				}
			}
			if strings.Contains(got, "NaN") {
				t.Fatalf("table contains NaN:\n%s", got)
			}
		})
	}
}

// TestRunLoadJSONBaseline: -json must emit a record benchfmt.Load can
// read back — the BENCH_*.json compatibility contract.
func TestRunLoadJSONBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	cfg := config{
		shards:  []int{1, 2},
		engine:  "stm",
		clients: 2,
		keys:    500,
		ops:     500,
		read:    0.90,
		scan:    0.05,
		scanLen: 10,
		zipf:    1.1,
		preload: 250,
		seed:    1,
		jsonOut: path,
	}
	var out bytes.Buffer
	if err := runLoad(cfg, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	base, err := benchfmt.Load(data)
	if err != nil {
		t.Fatalf("benchfmt cannot read the baseline back: %v", err)
	}
	if len(base.Benchmarks) != 2 {
		t.Fatalf("baseline has %d benchmarks, want 2: %v", len(base.Benchmarks), base.Benchmarks)
	}
	for name, b := range base.Benchmarks {
		if !strings.Contains(name, "shards=") {
			t.Fatalf("benchmark name %q missing shards label", name)
		}
		for _, unit := range []string{"ops/s", "p50-us", "p95-us", "p99-us", "errors"} {
			if _, ok := b.Metrics[unit]; !ok {
				t.Fatalf("benchmark %s missing unit %q", name, unit)
			}
		}
		if b.Metrics["ops/s"].Mean <= 0 {
			t.Fatalf("benchmark %s: non-positive ops/s", name)
		}
	}
}

// TestTransferOps pins the contention-shape contract: every batch has
// exactly cfg.batch add ops whose deltas sum to zero (the conservation
// invariant the server tests audit), and in -affine mode every key in a
// batch lands on the same shard — the property that keeps the batch a
// single native transaction instead of a 2PL cross-shard one.
func TestTransferOps(t *testing.T) {
	cfg := config{keys: 512, zipf: 1.3}
	r := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(r, cfg.zipf, 1, uint64(cfg.keys-1))

	for _, batch := range []int{2, 3, 16} {
		cfg.batch = batch
		for _, shards := range []int{0, 4} { // 0 = no affinity pools
			var pools [][]uint64
			if shards > 0 {
				pools = buildAffinity(cfg.keys, shards)
				total := 0
				for _, p := range pools {
					total += len(p)
				}
				if total != cfg.keys {
					t.Fatalf("affinity pools cover %d keys, want %d", total, cfg.keys)
				}
			}
			for trial := 0; trial < 50; trial++ {
				ops := transferOps(r, zipf, cfg, pools)
				if len(ops) != batch {
					t.Fatalf("batch=%d: got %d ops", batch, len(ops))
				}
				sum := int64(0)
				for _, op := range ops {
					if op.Kind != "add" {
						t.Fatalf("op kind %q, want add", op.Kind)
					}
					sum += op.Delta
				}
				if sum != 0 {
					t.Fatalf("batch=%d shards=%d: deltas sum to %d, want 0 (%v)", batch, shards, sum, ops)
				}
				if pools != nil {
					want := server.ShardOfKey(ops[0].Key, shards)
					for _, op := range ops {
						if got := server.ShardOfKey(op.Key, shards); got != want {
							t.Fatalf("affine batch straddles shards %d and %d: %v", want, got, ops)
						}
					}
				}
			}
		}
	}
}

// TestRunLoadReportsErrors: a run against a rate-limited server must
// complete and count its 429 refusals rather than failing.
func TestRunLoadReportsErrors(t *testing.T) {
	cfg := config{
		shards:  []int{1},
		engine:  "stm",
		clients: 2,
		keys:    200,
		ops:     200,
		read:    1.0, // all gets: preload stays under the limiter's radar
		scanLen: 10,
		zipf:    1.1,
		preload: 250,
		seed:    1,
	}
	var out bytes.Buffer
	if err := runLoad(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1") {
		t.Fatalf("no table row:\n%s", out.String())
	}
}
