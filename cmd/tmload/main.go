// Command tmload is the closed-loop load generator for tmserve: N
// clients issue a mixed workload — Zipf-popular point reads (the E10
// read-mostly shape), ordered range scans (the E11 shape), and
// cross-key transfer batches — against either an in-process server (the
// default: one fresh server per requested shard count) or a remote
// tmserve (-url), and print a throughput/latency-percentile table per
// shard count.
//
//	tmload -shards 1,2,4,8 -clients 32 -keys 1000000 -ops 200000
//	tmload -url http://host:8080 -clients 64
//	tmload -smoke                      # CI-sized run
//	tmload -smoke -json BENCH_load.json  # also record a benchfmt baseline
//	tmload -url http://host:8080 -batch 16 -affine -zipf 1.4
//	                                   # contention shape: fat single-shard
//	                                   # RMW transactions on hot keys
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/server"
)

type config struct {
	url     string  // non-empty: load a remote server instead of in-process ones
	shards  []int   // shard counts to sweep (in-process mode)
	engine  string  // per-shard engine for in-process servers
	clients int     // concurrent closed-loop clients
	keys    int     // keyspace size
	ops     int     // operations per run (split across clients)
	read    float64 // fraction of ops that are point gets
	scan    float64 // fraction of ops that are range scans
	scanLen int     // keys per scan
	zipf    float64 // Zipf s parameter (>1); popularity skew of point reads
	batch   int     // keys per transfer batch (paired ±1 add ops)
	affine  bool    // confine each transfer batch to a single shard
	preload int     // puts per preload batch
	seed    int64
	jsonOut string // non-empty: also write a benchfmt baseline here ("-" = stdout)
}

func main() {
	var (
		url     = flag.String("url", "", "remote tmserve base URL (default: in-process servers)")
		shards  = flag.String("shards", "1,2,4,8", "comma-separated shard counts to sweep (in-process mode)")
		engine  = flag.String("engine", "stm", "per-shard engine for in-process servers: stm or mvstm")
		clients = flag.Int("clients", 16, "concurrent clients")
		keys    = flag.Int("keys", 100_000, "keyspace size")
		ops     = flag.Int("ops", 50_000, "operations per run")
		read    = flag.Float64("read", 0.90, "point-read fraction (E10 shape)")
		scanf   = flag.Float64("scan", 0.05, "range-scan fraction (E11 shape); the rest are transfer batches")
		scanLen = flag.Int("scanlen", 100, "keys per scan")
		zipf    = flag.Float64("zipf", 1.1, "Zipf s parameter for key popularity")
		batch   = flag.Int("batch", 2, "keys per transfer batch (read-modify-write adds, paired -1/+1)")
		affine  = flag.Bool("affine", false, "confine each transfer batch to one shard: native-transaction contention instead of cross-shard 2PL")
		seed    = flag.Int64("seed", 1, "workload RNG seed")
		smoke   = flag.Bool("smoke", false, "tiny CI-sized run (overrides sizes)")
		jsonOut = flag.String("json", "", "also write results as a BENCH_*.json-compatible baseline to this path (\"-\" = stdout)")
	)
	flag.Parse()
	cfg := config{
		url:     *url,
		engine:  *engine,
		clients: *clients,
		keys:    *keys,
		ops:     *ops,
		read:    *read,
		scan:    *scanf,
		scanLen: *scanLen,
		zipf:    *zipf,
		batch:   *batch,
		affine:  *affine,
		preload: 500,
		seed:    *seed,
		jsonOut: *jsonOut,
	}
	for _, f := range strings.Split(*shards, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "tmload: bad -shards entry %q\n", f)
			os.Exit(2)
		}
		cfg.shards = append(cfg.shards, n)
	}
	if *smoke {
		cfg.shards = []int{1, 4}
		cfg.clients = 4
		cfg.keys = 2_000
		cfg.ops = 2_000
	}
	if err := runLoad(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tmload:", err)
		os.Exit(1)
	}
}

// row is one line of the output table.
type row struct {
	label   string
	opsSec  float64
	p50     time.Duration
	p95     time.Duration
	p99     time.Duration
	errors  int
	elapsed time.Duration
}

// runLoad executes the sweep and prints the table.
func runLoad(cfg config, out io.Writer) error {
	if cfg.batch < 2 {
		cfg.batch = 2 // a transfer needs at least a debit and a credit
	}
	fmt.Fprintf(out, "tmload: engine=%s clients=%d keys=%d ops=%d mix=%.0f%%get/%.0f%%scan/%.0f%%batch zipf=%.2f batch=%d affine=%v\n",
		cfg.engine, cfg.clients, cfg.keys, cfg.ops,
		100*cfg.read, 100*cfg.scan, 100*(1-cfg.read-cfg.scan), cfg.zipf, cfg.batch, cfg.affine)
	fmt.Fprintf(out, "%-10s %12s %10s %10s %10s %8s\n", "shards", "ops/s", "p50(µs)", "p95(µs)", "p99(µs)", "errors")

	emit := func(r row) {
		fmt.Fprintf(out, "%-10s %12.0f %10d %10d %10d %8d\n",
			r.label, r.opsSec, r.p50.Microseconds(), r.p95.Microseconds(), r.p99.Microseconds(), r.errors)
	}

	var rows []row
	if cfg.url != "" {
		r, err := runOne(cfg.url, "remote", cfg, 0)
		if err != nil {
			return err
		}
		emit(r)
		rows = append(rows, r)
	} else {
		for _, n := range cfg.shards {
			srv, err := server.New(server.Config{Shards: n, Engine: cfg.engine})
			if err != nil {
				return err
			}
			ts := httptest.NewServer(srv.Handler())
			r, err := runOne(ts.URL, strconv.Itoa(n), cfg, n)
			ts.Close()
			if err != nil {
				return err
			}
			emit(r)
			rows = append(rows, r)
		}
	}
	if cfg.jsonOut != "" {
		return writeBaseline(cfg, rows, out)
	}
	return nil
}

// writeBaseline records the sweep as a benchfmt.Baseline — the exact
// layout of the committed BENCH_PRn.json files — so cmd/benchdiff can
// compare serving-tier runs the same way it compares engine microbench
// baselines.
func writeBaseline(cfg config, rows []row, out io.Writer) error {
	base := &benchfmt.Baseline{
		Label:      "tmload",
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Command:    strings.Join(os.Args, " "),
		Benchmarks: map[string]benchfmt.Bench{},
	}
	point := func(v float64) benchfmt.Metric { return benchfmt.Metric{Mean: v, Min: v, Max: v} }
	for _, r := range rows {
		base.Benchmarks["repro/cmd/tmload.Load/engine="+cfg.engine+"/shards="+r.label] = benchfmt.Bench{
			Runs:  1,
			Iters: int64(cfg.ops),
			Metrics: map[string]benchfmt.Metric{
				"ops/s":  point(r.opsSec),
				"p50-us": point(float64(r.p50.Microseconds())),
				"p95-us": point(float64(r.p95.Microseconds())),
				"p99-us": point(float64(r.p99.Microseconds())),
				"errors": point(float64(r.errors)),
			},
		}
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if cfg.jsonOut == "-" {
		_, err = out.Write(data)
		return err
	}
	return os.WriteFile(cfg.jsonOut, data, 0o644)
}

// runOne preloads the keyspace and drives one closed-loop run. shardN is
// the server's shard count when the caller knows it (in-process mode);
// pass 0 to discover it from /stats (only done when -affine needs it).
func runOne(base, label string, cfg config, shardN int) (row, error) {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.clients * 2,
		MaxIdleConnsPerHost: cfg.clients * 2,
	}}
	defer client.CloseIdleConnections()

	var pools [][]uint64
	if cfg.affine {
		if shardN == 0 {
			n, err := fetchShards(base, client)
			if err != nil {
				return row{}, fmt.Errorf("-affine: %w", err)
			}
			shardN = n
		}
		if shardN > 1 {
			pools = buildAffinity(cfg.keys, shardN)
		}
	}

	if err := preload(base, client, cfg); err != nil {
		return row{}, err
	}

	type result struct {
		lats []time.Duration
		errs int
	}
	results := make([]result, cfg.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		c := c
		share := cfg.ops / cfg.clients
		if c < cfg.ops%cfg.clients {
			share++
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.seed + int64(c)))
			zipf := rand.NewZipf(r, cfg.zipf, 1, uint64(cfg.keys-1))
			res := &results[c]
			res.lats = make([]time.Duration, 0, share)
			for i := 0; i < share; i++ {
				ok, d := issue(base, client, r, zipf, cfg, pools)
				res.lats = append(res.lats, d)
				if !ok {
					res.errs++
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	errs := 0
	for _, res := range results {
		all = append(all, res.lats...)
		errs += res.errs
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return all[i]
	}
	return row{
		label:   label,
		opsSec:  float64(len(all)) / elapsed.Seconds(),
		p50:     q(0.50),
		p95:     q(0.95),
		p99:     q(0.99),
		errors:  errs,
		elapsed: elapsed,
	}, nil
}

// key formats the i-th key; zero-padded so scans have a dense ordered
// range to walk.
func key(i uint64) string { return fmt.Sprintf("user%09d", i) }

// preload funds the keyspace in large put batches.
func preload(base string, client *http.Client, cfg config) error {
	for lo := 0; lo < cfg.keys; lo += cfg.preload {
		hi := min(lo+cfg.preload, cfg.keys)
		ops := make([]server.Op, 0, hi-lo)
		for i := lo; i < hi; i++ {
			ops = append(ops, server.Op{Kind: "put", Key: key(uint64(i)), Value: "100"})
		}
		if code, err := postBatch(base, client, ops); err != nil {
			return fmt.Errorf("preload: %w", err)
		} else if code != http.StatusOK {
			return fmt.Errorf("preload batch: status %d", code)
		}
	}
	return nil
}

// issue sends one operation of the mixed workload, reporting success and
// latency.
func issue(base string, client *http.Client, r *rand.Rand, zipf *rand.Zipf, cfg config, pools [][]uint64) (bool, time.Duration) {
	x := r.Float64()
	start := time.Now()
	ok := false
	switch {
	case x < cfg.read:
		// E10 shape: Zipf-popular point read.
		resp, err := client.Get(base + "/get?key=" + key(zipf.Uint64()))
		if err == nil {
			drain(resp)
			ok = resp.StatusCode == http.StatusOK
		}
	case x < cfg.read+cfg.scan:
		// E11 shape: ordered range scan from a random start.
		lo := uint64(r.Intn(cfg.keys))
		url := fmt.Sprintf("%s/scan?from=%s&to=%s&limit=%d", base, key(lo), key(lo+uint64(cfg.scanLen)), cfg.scanLen)
		resp, err := client.Get(url)
		if err == nil {
			drain(resp)
			ok = resp.StatusCode == http.StatusOK
		}
	default:
		code, err := postBatch(base, client, transferOps(r, zipf, cfg, pools))
		ok = err == nil && code == http.StatusOK
	}
	return ok, time.Since(start)
}

// transferOps builds one transfer batch: cfg.batch Zipf-chosen keys,
// each a read-modify-write add, with deltas paired -1/+1 so the batch
// conserves the keyspace total (an odd trailing op adds 0 — still an
// RMW). With pools set (-affine against >1 shard), the first Zipf draw
// picks the shard and the remaining keys are rejection-sampled from that
// shard's pool, preserving the popularity skew conditioned on the shard;
// the whole batch then runs as ONE native transaction on that shard,
// where engine-level conflicts (and the abort taxonomy) live, instead of
// being serialized under the router's cross-shard 2PL.
func transferOps(r *rand.Rand, zipf *rand.Zipf, cfg config, pools [][]uint64) []server.Op {
	idx := make([]uint64, cfg.batch)
	idx[0] = zipf.Uint64()
	if pools == nil {
		for i := 1; i < cfg.batch; i++ {
			idx[i] = zipf.Uint64()
		}
	} else {
		s := server.ShardOfKey(key(idx[0]), len(pools))
		for i := 1; i < cfg.batch; i++ {
			hit := false
			for t := 0; t < 32; t++ {
				if v := zipf.Uint64(); server.ShardOfKey(key(v), len(pools)) == s {
					idx[i], hit = v, true
					break
				}
			}
			if !hit {
				idx[i] = pools[s][r.Intn(len(pools[s]))]
			}
		}
	}
	ops := make([]server.Op, len(idx))
	for i, k := range idx {
		d := int64(-1)
		if i%2 == 1 {
			d = 1
		}
		if i == len(idx)-1 && len(idx)%2 == 1 {
			d = 0
		}
		ops[i] = server.Op{Kind: "add", Key: key(k), Delta: d}
	}
	return ops
}

// buildAffinity groups the key indices by owning shard (the server's
// FNV-1a partitioning via server.ShardOfKey) for -affine batches.
func buildAffinity(keys, shards int) [][]uint64 {
	pools := make([][]uint64, shards)
	for i := 0; i < keys; i++ {
		s := server.ShardOfKey(key(uint64(i)), shards)
		pools[s] = append(pools[s], uint64(i))
	}
	return pools
}

// fetchShards asks a remote server's /stats for its shard count.
func fetchShards(base string, client *http.Client) (int, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var payload struct {
		Shards int `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return 0, err
	}
	if payload.Shards < 1 {
		return 0, fmt.Errorf("remote /stats reports %d shards", payload.Shards)
	}
	return payload.Shards, nil
}

func postBatch(base string, client *http.Client, ops []server.Op) (int, error) {
	body, err := json.Marshal(map[string]any{"ops": ops})
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(base+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	drain(resp)
	return resp.StatusCode, nil
}

// drain consumes and closes a response body so the connection is reused.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
