// Command tmload is the closed-loop load generator for tmserve: N
// clients issue a mixed workload — Zipf-popular point reads (the E10
// read-mostly shape), ordered range scans (the E11 shape), and
// cross-key transfer batches — against either an in-process server (the
// default: one fresh server per requested shard count) or a remote
// tmserve (-url), and print a throughput/latency-percentile table per
// shard count.
//
//	tmload -shards 1,2,4,8 -clients 32 -keys 1000000 -ops 200000
//	tmload -url http://host:8080 -clients 64
//	tmload -smoke   # CI-sized run
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
)

type config struct {
	url     string  // non-empty: load a remote server instead of in-process ones
	shards  []int   // shard counts to sweep (in-process mode)
	engine  string  // per-shard engine for in-process servers
	clients int     // concurrent closed-loop clients
	keys    int     // keyspace size
	ops     int     // operations per run (split across clients)
	read    float64 // fraction of ops that are point gets
	scan    float64 // fraction of ops that are range scans
	scanLen int     // keys per scan
	zipf    float64 // Zipf s parameter (>1); popularity skew of point reads
	preload int     // puts per preload batch
	seed    int64
}

func main() {
	var (
		url     = flag.String("url", "", "remote tmserve base URL (default: in-process servers)")
		shards  = flag.String("shards", "1,2,4,8", "comma-separated shard counts to sweep (in-process mode)")
		engine  = flag.String("engine", "stm", "per-shard engine for in-process servers: stm or mvstm")
		clients = flag.Int("clients", 16, "concurrent clients")
		keys    = flag.Int("keys", 100_000, "keyspace size")
		ops     = flag.Int("ops", 50_000, "operations per run")
		read    = flag.Float64("read", 0.90, "point-read fraction (E10 shape)")
		scanf   = flag.Float64("scan", 0.05, "range-scan fraction (E11 shape); the rest are transfer batches")
		scanLen = flag.Int("scanlen", 100, "keys per scan")
		zipf    = flag.Float64("zipf", 1.1, "Zipf s parameter for key popularity")
		seed    = flag.Int64("seed", 1, "workload RNG seed")
		smoke   = flag.Bool("smoke", false, "tiny CI-sized run (overrides sizes)")
	)
	flag.Parse()
	cfg := config{
		url:     *url,
		engine:  *engine,
		clients: *clients,
		keys:    *keys,
		ops:     *ops,
		read:    *read,
		scan:    *scanf,
		scanLen: *scanLen,
		zipf:    *zipf,
		preload: 500,
		seed:    *seed,
	}
	for _, f := range strings.Split(*shards, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "tmload: bad -shards entry %q\n", f)
			os.Exit(2)
		}
		cfg.shards = append(cfg.shards, n)
	}
	if *smoke {
		cfg.shards = []int{1, 4}
		cfg.clients = 4
		cfg.keys = 2_000
		cfg.ops = 2_000
	}
	if err := runLoad(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tmload:", err)
		os.Exit(1)
	}
}

// row is one line of the output table.
type row struct {
	label   string
	opsSec  float64
	p50     time.Duration
	p95     time.Duration
	p99     time.Duration
	errors  int
	elapsed time.Duration
}

// runLoad executes the sweep and prints the table.
func runLoad(cfg config, out io.Writer) error {
	fmt.Fprintf(out, "tmload: engine=%s clients=%d keys=%d ops=%d mix=%.0f%%get/%.0f%%scan/%.0f%%batch zipf=%.2f\n",
		cfg.engine, cfg.clients, cfg.keys, cfg.ops,
		100*cfg.read, 100*cfg.scan, 100*(1-cfg.read-cfg.scan), cfg.zipf)
	fmt.Fprintf(out, "%-10s %12s %10s %10s %10s %8s\n", "shards", "ops/s", "p50(µs)", "p95(µs)", "p99(µs)", "errors")

	emit := func(r row) {
		fmt.Fprintf(out, "%-10s %12.0f %10d %10d %10d %8d\n",
			r.label, r.opsSec, r.p50.Microseconds(), r.p95.Microseconds(), r.p99.Microseconds(), r.errors)
	}

	if cfg.url != "" {
		r, err := runOne(cfg.url, "remote", cfg)
		if err != nil {
			return err
		}
		emit(r)
		return nil
	}
	for _, n := range cfg.shards {
		srv, err := server.New(server.Config{Shards: n, Engine: cfg.engine})
		if err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		r, err := runOne(ts.URL, strconv.Itoa(n), cfg)
		ts.Close()
		if err != nil {
			return err
		}
		emit(r)
	}
	return nil
}

// runOne preloads the keyspace and drives one closed-loop run.
func runOne(base, label string, cfg config) (row, error) {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.clients * 2,
		MaxIdleConnsPerHost: cfg.clients * 2,
	}}
	defer client.CloseIdleConnections()

	if err := preload(base, client, cfg); err != nil {
		return row{}, err
	}

	type result struct {
		lats []time.Duration
		errs int
	}
	results := make([]result, cfg.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		c := c
		share := cfg.ops / cfg.clients
		if c < cfg.ops%cfg.clients {
			share++
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.seed + int64(c)))
			zipf := rand.NewZipf(r, cfg.zipf, 1, uint64(cfg.keys-1))
			res := &results[c]
			res.lats = make([]time.Duration, 0, share)
			for i := 0; i < share; i++ {
				ok, d := issue(base, client, r, zipf, cfg)
				res.lats = append(res.lats, d)
				if !ok {
					res.errs++
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	errs := 0
	for _, res := range results {
		all = append(all, res.lats...)
		errs += res.errs
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return all[i]
	}
	return row{
		label:   label,
		opsSec:  float64(len(all)) / elapsed.Seconds(),
		p50:     q(0.50),
		p95:     q(0.95),
		p99:     q(0.99),
		errors:  errs,
		elapsed: elapsed,
	}, nil
}

// key formats the i-th key; zero-padded so scans have a dense ordered
// range to walk.
func key(i uint64) string { return fmt.Sprintf("user%09d", i) }

// preload funds the keyspace in large put batches.
func preload(base string, client *http.Client, cfg config) error {
	for lo := 0; lo < cfg.keys; lo += cfg.preload {
		hi := min(lo+cfg.preload, cfg.keys)
		ops := make([]server.Op, 0, hi-lo)
		for i := lo; i < hi; i++ {
			ops = append(ops, server.Op{Kind: "put", Key: key(uint64(i)), Value: "100"})
		}
		if code, err := postBatch(base, client, ops); err != nil {
			return fmt.Errorf("preload: %w", err)
		} else if code != http.StatusOK {
			return fmt.Errorf("preload batch: status %d", code)
		}
	}
	return nil
}

// issue sends one operation of the mixed workload, reporting success and
// latency.
func issue(base string, client *http.Client, r *rand.Rand, zipf *rand.Zipf, cfg config) (bool, time.Duration) {
	x := r.Float64()
	start := time.Now()
	ok := false
	switch {
	case x < cfg.read:
		// E10 shape: Zipf-popular point read.
		resp, err := client.Get(base + "/get?key=" + key(zipf.Uint64()))
		if err == nil {
			drain(resp)
			ok = resp.StatusCode == http.StatusOK
		}
	case x < cfg.read+cfg.scan:
		// E11 shape: ordered range scan from a random start.
		lo := uint64(r.Intn(cfg.keys))
		url := fmt.Sprintf("%s/scan?from=%s&to=%s&limit=%d", base, key(lo), key(lo+uint64(cfg.scanLen)), cfg.scanLen)
		resp, err := client.Get(url)
		if err == nil {
			drain(resp)
			ok = resp.StatusCode == http.StatusOK
		}
	default:
		// Transfer batch: value moves between two Zipf-chosen keys in one
		// cross-shard transaction.
		a, b := zipf.Uint64(), zipf.Uint64()
		if a == b {
			b = (b + 1) % uint64(cfg.keys)
		}
		code, err := postBatch(base, client, []server.Op{
			{Kind: "add", Key: key(a), Delta: -1},
			{Kind: "add", Key: key(b), Delta: 1},
		})
		ok = err == nil && code == http.StatusOK
	}
	return ok, time.Since(start)
}

func postBatch(base string, client *http.Client, ops []server.Op) (int, error) {
	body, err := json.Marshal(map[string]any{"ops": ops})
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(base+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	drain(resp)
	return resp.StatusCode, nil
}

// drain consumes and closes a response body so the connection is reused.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
