// Command benchdiff compares the current E8 benchmark numbers against a
// committed baseline (BENCH_PRn.json) and prints a markdown report — the
// report-only perf-trajectory check CI appends to the job summary. By
// default it is advisory: it never exits non-zero on a regression, only
// on unusable input.
//
// Passing -threshold turns it into a gate: any ns/op row whose regression
// exceeds the threshold (e.g. -threshold 0.15 for 15%) makes benchdiff
// exit non-zero after printing the report, listing the offending rows.
// The CI job deliberately does not pass -threshold — wall-clock deltas on
// shared runners are noise, and the committed baseline was recorded on
// different hardware — so the gate is for local runs on comparable
// hardware (`make bench-gate`).
//
// Usage:
//
//	benchdiff -baseline BENCH_PR4.json -new bench_new.txt
//	benchdiff -baseline BENCH_PR4.json -new bench_new.txt -threshold 0.15
//	go test -bench ... ./... | benchdiff -baseline BENCH_PR4.json
//
// The -new input may be raw `go test -bench` text or a benchjson file.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"slices"
	"strings"

	"repro/internal/benchfmt"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_PR4.json", "committed baseline JSON")
	newPath := flag.String("new", "", "new bench output: raw `go test -bench` text or benchjson JSON (default stdin)")
	units := flag.String("units", "ns/op,abort-ratio", "comma-separated metric units to compare (empty = all)")
	threshold := flag.Float64("threshold", 0.05, "relative change below which a row is reported as a wash; when passed explicitly, also the gate: ns/op regressions above it exit non-zero")
	flag.Parse()
	gate := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "threshold" {
			gate = true
		}
	})
	// The display wash band never widens past the default when gating:
	// a sub-gate regression (say 12% under a 15% gate) must still print
	// as an explicit delta, not disappear into "~" exactly when someone
	// is looking for regressions.
	wash := *threshold
	if gate && wash > 0.05 {
		wash = 0.05
	}

	oldData, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	oldB, err := benchfmt.Load(oldData)
	if err != nil {
		fatal(fmt.Errorf("baseline %s: %w", *baselinePath, err))
	}
	var newData []byte
	if *newPath == "" {
		newData, err = io.ReadAll(os.Stdin)
	} else {
		newData, err = os.ReadFile(*newPath)
	}
	if err != nil {
		fatal(err)
	}
	newB, err := benchfmt.Load(newData)
	if err != nil {
		fatal(fmt.Errorf("new results: %w", err))
	}

	var unitList []string
	for _, u := range strings.Split(*units, ",") {
		if u = strings.TrimSpace(u); u != "" {
			unitList = append(unitList, u)
		}
	}
	if gate && len(unitList) > 0 && !slices.Contains(unitList, "ns/op") {
		// The gate inspects ns/op rows; silently gating a report that
		// filtered them out would be a no-op the user believes is armed.
		fatal(fmt.Errorf("-threshold gates ns/op regressions, but -units %q excludes ns/op", *units))
	}
	rows := benchfmt.Diff(oldB, newB, unitList)
	if len(rows) == 0 {
		fmt.Println("benchdiff: no overlapping benchmarks between baseline and new results")
		return
	}

	fmt.Printf("### Benchmark delta vs %s baseline\n\n", labelOr(oldB.Label, *baselinePath))
	fmt.Printf("Baseline: %s, %s/%s", oldB.Go, oldB.GOOS, oldB.GOARCH)
	if oldB.CPU != "" {
		fmt.Printf(", %s", oldB.CPU)
	}
	if gate {
		fmt.Printf(" · gating: ns/op regressions > %.0f%% fail · |Δ| < %.0f%% reported as ~\n\n", *threshold*100, wash*100)
	} else {
		fmt.Printf(" · advisory, not a gate · |Δ| < %.0f%% reported as ~\n\n", wash*100)
	}
	fmt.Println("| benchmark | unit | baseline | current | Δ |")
	fmt.Println("|---|---|---:|---:|---:|")
	var regressions []string
	for _, r := range rows {
		name := strings.TrimPrefix(strings.TrimPrefix(r.Name, "repro/"), "repro.")
		fmt.Printf("| %s | %s | %s | %s | %s |\n",
			name, r.Unit, num(r.Old), num(r.New), delta(r.Delta, wash))
		if gate && r.Unit == "ns/op" && !math.IsNaN(r.Delta) && !math.IsInf(r.Delta, 0) && r.Delta > *threshold {
			regressions = append(regressions,
				fmt.Sprintf("%s: %s → %s (%+.1f%%)", name, num(r.Old), num(r.New), r.Delta*100))
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d ns/op regression(s) exceed the %.0f%% threshold:\n", len(regressions), *threshold*100)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  ", r)
		}
		os.Exit(1)
	}
}

func labelOr(label, fallback string) string {
	if label != "" {
		return label
	}
	return fallback
}

func num(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func delta(d, threshold float64) string {
	switch {
	case math.IsNaN(d) || math.IsInf(d, 0):
		return "n/a"
	case math.Abs(d) < threshold:
		return "~"
	default:
		return fmt.Sprintf("%+.1f%%", d*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
