// Command benchdiff compares the current E8 benchmark numbers against a
// committed baseline (BENCH_PRn.json) and prints a markdown report — the
// report-only perf-trajectory check CI appends to the job summary. By
// default it is advisory: it never exits non-zero on a regression, only
// on unusable input.
//
// Passing -threshold turns it into a gate: any ns/op row whose regression
// exceeds the threshold (e.g. -threshold 0.15 for 15%) makes benchdiff
// exit non-zero after printing the report, listing the offending rows.
// The gate compares each side's *minimum* over its -count runs rather
// than the mean: scheduler interference on a shared machine inflates
// samples but almost never deflates them, so the minima are the two
// least-interference measurements and their ratio is the noise-robust
// regression signal (a real slowdown raises the floor too). The report
// table still shows means. Two further calibrations make the gate hold
// on a noisy shared machine, both computed from measurements already in
// hand rather than tuned per host. First, the suite-wide *median* of the
// min-vs-min deltas is treated as the machine's era shift and normalized
// out before gating: when the host slows between the recording era and
// this run, every cell drifts together, and code regressions are cells
// that moved relative to the suite (the median is robust to a handful of
// real regressions, and a drift past 2x fails loudly instead of being
// normalized away). Second, each cell's effective threshold is floored
// by the baseline's own recorded relative spread ((max-min)/min over its
// -count runs): a contended cell that wanders 50% within one recording
// era cannot honestly be gated at 15%, while a tight uncontended cell
// keeps the tight bar (the spread is widened 1.5x for the small-sample
// bias of a 5-run max-min range).
// The CI job deliberately does not pass -threshold — wall-clock deltas on
// shared runners are noise, and the committed baseline was recorded on
// different hardware — so the gate is for local runs on comparable
// hardware (`make bench-gate`).
//
// Passing -zeroalloc arms a second, independent gate: every new-result
// benchmark whose name matches the regexp must report 0 allocs/op in its
// cleanest run — the minimum over -count runs (so the input must come
// from `go test -bench -benchmem -count N`). Unlike the ns/op gate it
// needs no baseline agreement — an allocation on a steady-state path is
// a regression in kind, not in degree, so there is no threshold to tune.
// The min (not the mean) is compared for the same reason the ns/op gate
// uses minima: a real steady-state allocation fires on every iteration
// of every run, while host-scheduler interference (a stolen pinned
// goroutine freezing the mvstm epoch floor mid-run) pollutes only some
// runs and must not flake the gate.
//
// Usage:
//
//	benchdiff -baseline BENCH_PR4.json -new bench_new.txt
//	benchdiff -baseline BENCH_PR4.json -new bench_new.txt -threshold 0.15
//	benchdiff -baseline BENCH_PR7.json -new bench_new.txt -zeroalloc 'E11NativeScan/tm=mvstm'
//	go test -bench ... ./... | benchdiff -baseline BENCH_PR4.json
//
// The -new input may be raw `go test -bench` text or a benchjson file.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"slices"
	"sort"
	"strings"

	"repro/internal/benchfmt"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_PR4.json", "committed baseline JSON")
	newPath := flag.String("new", "", "new bench output: raw `go test -bench` text or benchjson JSON (default stdin)")
	units := flag.String("units", "ns/op,abort-ratio", "comma-separated metric units to compare (empty = all)")
	threshold := flag.Float64("threshold", 0.05, "relative change below which a row is reported as a wash; when passed explicitly, also the gate: ns/op regressions above it exit non-zero")
	zeroalloc := flag.String("zeroalloc", "", "regexp of new-result benchmarks that must report exactly 0 allocs/op (requires -benchmem output); violations exit non-zero")
	flag.Parse()
	gate := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "threshold" {
			gate = true
		}
	})
	// The display wash band never widens past the default when gating:
	// a sub-gate regression (say 12% under a 15% gate) must still print
	// as an explicit delta, not disappear into "~" exactly when someone
	// is looking for regressions.
	wash := *threshold
	if gate && wash > 0.05 {
		wash = 0.05
	}

	oldData, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	oldB, err := benchfmt.Load(oldData)
	if err != nil {
		fatal(fmt.Errorf("baseline %s: %w", *baselinePath, err))
	}
	var newData []byte
	if *newPath == "" {
		newData, err = io.ReadAll(os.Stdin)
	} else {
		newData, err = os.ReadFile(*newPath)
	}
	if err != nil {
		fatal(err)
	}
	newB, err := benchfmt.Load(newData)
	if err != nil {
		fatal(fmt.Errorf("new results: %w", err))
	}

	var unitList []string
	for _, u := range strings.Split(*units, ",") {
		if u = strings.TrimSpace(u); u != "" {
			unitList = append(unitList, u)
		}
	}
	if gate && len(unitList) > 0 && !slices.Contains(unitList, "ns/op") {
		// The gate inspects ns/op rows; silently gating a report that
		// filtered them out would be a no-op the user believes is armed.
		fatal(fmt.Errorf("-threshold gates ns/op regressions, but -units %q excludes ns/op", *units))
	}
	rows := benchfmt.Diff(oldB, newB, unitList)
	if len(rows) == 0 {
		fmt.Println("benchdiff: no overlapping benchmarks between baseline and new results")
		return
	}

	fmt.Printf("### Benchmark delta vs %s baseline\n\n", labelOr(oldB.Label, *baselinePath))
	fmt.Printf("Baseline: %s, %s/%s", oldB.Go, oldB.GOOS, oldB.GOARCH)
	if oldB.CPU != "" {
		fmt.Printf(", %s", oldB.CPU)
	}
	if gate {
		fmt.Printf(" · gating: ns/op regressions > %.0f%% fail · |Δ| < %.0f%% reported as ~\n\n", *threshold*100, wash*100)
	} else {
		fmt.Printf(" · advisory, not a gate · |Δ| < %.0f%% reported as ~\n\n", wash*100)
	}
	// The gate normalizes every cell's min-vs-min delta by the suite-wide
	// median delta before comparing (see the doc comment): when the host
	// slows down between the baseline era and this run, every cell shifts
	// together, and that shift is hardware, not code. A real regression is
	// a cell that moved relative to the rest of the suite. The median is
	// robust to a handful of genuine regressions; a genuinely global
	// slowdown cannot hide past the shift sanity bound below.
	shift := 0.0
	if gate {
		var deltas []float64
		for _, r := range rows {
			if r.Unit == "ns/op" && r.OldMin > 0 {
				deltas = append(deltas, (r.NewMin-r.OldMin)/r.OldMin)
			}
		}
		if len(deltas) > 0 {
			sort.Float64s(deltas)
			shift = deltas[len(deltas)/2]
		}
		fmt.Printf("Suite-wide min-vs-min drift (era shift, normalized out of the gate): %+.1f%%\n\n", shift*100)
	}
	fmt.Println("| benchmark | unit | baseline | current | Δ |")
	fmt.Println("|---|---|---:|---:|---:|")
	var regressions []string
	for _, r := range rows {
		name := strings.TrimPrefix(strings.TrimPrefix(r.Name, "repro/"), "repro.")
		fmt.Printf("| %s | %s | %s | %s | %s |\n",
			name, r.Unit, num(r.Old), num(r.New), delta(r.Delta, wash))
		if gate && r.Unit == "ns/op" && r.OldMin > 0 {
			// Gate on the era-normalized min-vs-min residual against the
			// cell's own noise floor (see the doc comment): the mean-based
			// Delta in the table is the honest trajectory number, but on a
			// shared machine its tail is fat enough that any 60-cell run
			// trips a fixed 15% mean gate somewhere by interference alone.
			minDelta := (r.NewMin - r.OldMin) / r.OldMin
			residual := (1+minDelta)/(1+shift) - 1
			eff := *threshold
			// 1.5x corrects the small-sample bias of a max-min range: over
			// -count 5 runs the recorded spread sits well inside the cell's
			// true range (a direct -count 8 re-run of a cell whose recorded
			// spread was 20% measured 50%), so the raw spread under-covers
			// exactly the cells it exists to cover.
			if spread := 1.5 * (r.OldMax - r.OldMin) / r.OldMin; spread > eff {
				eff = spread
			}
			if residual > eff {
				regressions = append(regressions,
					fmt.Sprintf("%s: min %s → %s (%+.1f%%; %+.1f%% after era shift, cell tolerance %.0f%%)",
						name, num(r.OldMin), num(r.NewMin), minDelta*100, residual*100, eff*100))
			}
		}
	}
	if gate && shift > 1.0 {
		regressions = append(regressions, fmt.Sprintf(
			"suite-wide min drift %+.1f%% exceeds the 2x sanity bound: either the machine changed out from under the baseline (re-record with make bench-baseline) or the change slowed the whole suite down", shift*100))
	}
	failed := false
	if len(regressions) > 0 {
		failed = true
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d ns/op regression(s) exceed the %.0f%% threshold:\n", len(regressions), *threshold*100)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  ", r)
		}
	}
	if *zeroalloc != "" {
		if viol := checkZeroAlloc(newB, *zeroalloc); len(viol) > 0 {
			failed = true
			fmt.Fprintf(os.Stderr, "\nbenchdiff: %d benchmark(s) matching -zeroalloc %q allocate:\n", len(viol), *zeroalloc)
			for _, v := range viol {
				fmt.Fprintln(os.Stderr, "  ", v)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkZeroAlloc returns one line per new-result benchmark that matches
// the pattern but reports a nonzero allocs/op. A pattern that matches
// nothing, or matches a benchmark recorded without -benchmem, is fatal:
// an armed gate that silently inspects nothing is worse than no gate.
func checkZeroAlloc(newB *benchfmt.Baseline, pattern string) []string {
	re, err := regexp.Compile(pattern)
	if err != nil {
		fatal(fmt.Errorf("-zeroalloc: %w", err))
	}
	var names []string
	for name := range newB.Benchmarks {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("-zeroalloc %q matches no benchmark in the new results", pattern))
	}
	sort.Strings(names)
	var viol []string
	for _, name := range names {
		m, ok := newB.Benchmarks[name].Metrics["allocs/op"]
		if !ok {
			fatal(fmt.Errorf("-zeroalloc: %s has no allocs/op metric (run the benchmarks with -benchmem)", name))
		}
		// Gate on the minimum over -count runs, like the ns/op gate: a
		// genuine steady-state allocation (a pooled path losing its pool)
		// allocates on every iteration and shows up in every run, so the
		// min catches it. A run that allocates only under host-scheduler
		// interference — a pinned goroutine stolen mid-scan freezes the
		// mvstm epoch floor and forces always-safe drops to the GC — shows
		// a nonzero count in *some* runs and a clean zero in the rest, and
		// must not flake the gate on a shared machine.
		if m.Min != 0 {
			viol = append(viol, fmt.Sprintf("%s: %.4g allocs/op in every run (mean %.4g, max %.4g), want a clean 0",
				strings.TrimPrefix(name, "repro/"), m.Min, m.Mean, m.Max))
		}
	}
	return viol
}

func labelOr(label, fallback string) string {
	if label != "" {
		return label
	}
	return fallback
}

func num(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func delta(d, threshold float64) string {
	switch {
	case math.IsNaN(d) || math.IsInf(d, 0):
		return "n/a"
	case math.Abs(d) < threshold:
		return "~"
	default:
		return fmt.Sprintf("%+.1f%%", d*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
