// Command benchdiff compares the current E8 benchmark numbers against a
// committed baseline (BENCH_PRn.json) and prints a markdown report — the
// report-only perf-trajectory check CI appends to the job summary. It is
// advisory by design: it never exits non-zero on a regression, only on
// unusable input.
//
// Usage:
//
//	benchdiff -baseline BENCH_PR2.json -new bench_new.txt
//	go test -bench ... ./... | benchdiff -baseline BENCH_PR2.json
//
// The -new input may be raw `go test -bench` text or a benchjson file.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/benchfmt"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_PR2.json", "committed baseline JSON")
	newPath := flag.String("new", "", "new bench output: raw `go test -bench` text or benchjson JSON (default stdin)")
	units := flag.String("units", "ns/op,abort-ratio", "comma-separated metric units to compare (empty = all)")
	threshold := flag.Float64("threshold", 0.05, "relative change below which a row is reported as a wash")
	flag.Parse()

	oldData, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	oldB, err := benchfmt.Load(oldData)
	if err != nil {
		fatal(fmt.Errorf("baseline %s: %w", *baselinePath, err))
	}
	var newData []byte
	if *newPath == "" {
		newData, err = io.ReadAll(os.Stdin)
	} else {
		newData, err = os.ReadFile(*newPath)
	}
	if err != nil {
		fatal(err)
	}
	newB, err := benchfmt.Load(newData)
	if err != nil {
		fatal(fmt.Errorf("new results: %w", err))
	}

	var unitList []string
	for _, u := range strings.Split(*units, ",") {
		if u = strings.TrimSpace(u); u != "" {
			unitList = append(unitList, u)
		}
	}
	rows := benchfmt.Diff(oldB, newB, unitList)
	if len(rows) == 0 {
		fmt.Println("benchdiff: no overlapping benchmarks between baseline and new results")
		return
	}

	fmt.Printf("### Benchmark delta vs %s baseline\n\n", labelOr(oldB.Label, *baselinePath))
	fmt.Printf("Baseline: %s, %s/%s", oldB.Go, oldB.GOOS, oldB.GOARCH)
	if oldB.CPU != "" {
		fmt.Printf(", %s", oldB.CPU)
	}
	fmt.Printf(" · advisory, not a gate · |Δ| < %.0f%% reported as ~\n\n", *threshold*100)
	fmt.Println("| benchmark | unit | baseline | current | Δ |")
	fmt.Println("|---|---|---:|---:|---:|")
	for _, r := range rows {
		name := strings.TrimPrefix(strings.TrimPrefix(r.Name, "repro/"), "repro.")
		fmt.Printf("| %s | %s | %s | %s | %s |\n",
			name, r.Unit, num(r.Old), num(r.New), delta(r.Delta, *threshold))
	}
}

func labelOr(label, fallback string) string {
	if label != "" {
		return label
	}
	return fallback
}

func num(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func delta(d, threshold float64) string {
	switch {
	case math.IsNaN(d) || math.IsInf(d, 0):
		return "n/a"
	case math.Abs(d) < threshold:
		return "~"
	default:
		return fmt.Sprintf("%+.1f%%", d*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
