// Command rmrsim runs one contended mutual-exclusion execution on the
// simulated memory and prints a per-process breakdown of steps and RMRs —
// the microscope view behind experiment E3's aggregates.
//
// Usage:
//
//	rmrsim [-lock lm:irtm] [-model cc-wb] [-n 8] [-k 4] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"

	ptm "repro"
	"repro/internal/memory"
	"repro/internal/mutex"
	"repro/internal/sched"
)

func main() {
	var (
		lockName = flag.String("lock", "lm:irtm", "lock algorithm (see tmbench -exp e3)")
		model    = flag.String("model", "cc-wb", "cache model: cc-wt, cc-wb, dsm")
		n        = flag.Int("n", 8, "number of processes")
		k        = flag.Int("k", 4, "acquisitions per process")
		seed     = flag.Int64("seed", 42, "scheduling seed")
	)
	flag.Parse()

	mem := ptm.NewMemory(*n, *model)
	if mem == nil {
		fatal(fmt.Errorf("unknown cache model %q", *model))
	}
	lock, err := ptm.NewLock(*lockName, mem)
	if err != nil {
		fatal(err)
	}
	s := sched.New(mem)
	for i := 0; i < *n; i++ {
		s.Go(i, func(p *memory.Proc) {
			for j := 0; j < *k; j++ {
				lock.Enter(p)
				lock.Exit(p)
			}
		})
	}
	if err := s.Run(sched.NewRandom(*seed)); err != nil {
		fatal(err)
	}

	fmt.Printf("lock=%s model=%s n=%d k=%d seed=%d\n\n", *lockName, *model, *n, *k, *seed)
	t := ptm.Table{Header: []string{"proc", "steps", "rmrs", "rmrs/acq"}}
	lm, isLM := lock.(*mutex.LM)
	if isLM {
		t.Header = append(t.Header, "tm-rmrs", "handoff-rmrs")
	}
	for i := 0; i < *n; i++ {
		p := mem.Proc(i)
		cells := []any{i, p.Steps(), p.RMRs(), float64(p.RMRs()) / float64(*k)}
		if isLM {
			cells = append(cells, lm.TMRMRs(i), p.RMRs()-lm.TMRMRs(i))
		}
		t.Add(cells...)
	}
	ptm.PrintTable(os.Stdout, &t)
	fmt.Printf("total: steps=%d rmrs=%d (%.2f rmrs/acquisition over %d acquisitions)\n",
		mem.TotalSteps(), mem.TotalRMRs(),
		float64(mem.TotalRMRs())/float64(*n**k), *n**k)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmrsim:", err)
	os.Exit(1)
}
