package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestBuildRejectsBadEngine(t *testing.T) {
	if _, err := build(4, "postgres", 0); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := build(-1, "stm", 0); err == nil {
		t.Fatal("negative shard count accepted")
	}
}

// TestBuiltServerServes smoke-tests the assembled handler end to end:
// the binary's wiring, minus the socket.
func TestBuiltServerServes(t *testing.T) {
	for _, engine := range []string{"stm", "mvstm"} {
		t.Run(engine, func(t *testing.T) {
			srv, err := build(4, engine, 0)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			resp, err := http.Post(ts.URL+"/put", "application/json",
				strings.NewReader(`{"key":"boot","value":"ok"}`))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("put: status %d", resp.StatusCode)
			}

			resp, err = http.Get(ts.URL + "/get?key=boot")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var got struct {
				Value string `json:"value"`
				Found bool   `json:"found"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatal(err)
			}
			if !got.Found || got.Value != "ok" {
				t.Fatalf("get boot = (%q, %v), want (ok, true)", got.Value, got.Found)
			}
		})
	}
}
