package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestBuildRejectsBadEngine(t *testing.T) {
	if _, err := build(options{shards: 4, engine: "postgres"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := build(options{shards: -1, engine: "stm"}); err == nil {
		t.Fatal("negative shard count accepted")
	}
}

// TestPprofOptIn: the pprof handlers must be reachable only when the
// -pprof flag asked for them.
func TestPprofOptIn(t *testing.T) {
	srv, err := build(options{shards: 1, engine: "stm"})
	if err != nil {
		t.Fatal(err)
	}
	for _, on := range []bool{false, true} {
		ts := httptest.NewServer(mount(srv, on))
		resp, err := http.Get(ts.URL + "/debug/pprof/")
		if err != nil {
			ts.Close()
			t.Fatal(err)
		}
		resp.Body.Close()
		if on && resp.StatusCode != http.StatusOK {
			t.Fatalf("pprof enabled: index status %d", resp.StatusCode)
		}
		if !on && resp.StatusCode == http.StatusOK {
			t.Fatal("pprof served without opt-in")
		}
		// The KV API must serve through the mount either way.
		resp, err = http.Get(ts.URL + "/healthz")
		if err != nil {
			ts.Close()
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz through mount(pprof=%v): status %d", on, resp.StatusCode)
		}
		ts.Close()
	}
}

// TestMetricsThroughBuiltServer: a profiled build must expose the
// Prometheus endpoint with the taxonomy series.
func TestMetricsThroughBuiltServer(t *testing.T) {
	srv, err := build(options{shards: 2, engine: "stm", profileK: 16, profileSample: 1, latencySample: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(mount(srv, false))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tm_commits_total", "tm_aborts_by_reason_total", "tm_hot_key_aborts", "tm_commit_latency_us_bucket"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %s:\n%s", want, body)
		}
	}
}

// TestBuiltServerServes smoke-tests the assembled handler end to end:
// the binary's wiring, minus the socket.
func TestBuiltServerServes(t *testing.T) {
	for _, engine := range []string{"stm", "mvstm"} {
		t.Run(engine, func(t *testing.T) {
			srv, err := build(options{shards: 4, engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			resp, err := http.Post(ts.URL+"/put", "application/json",
				strings.NewReader(`{"key":"boot","value":"ok"}`))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("put: status %d", resp.StatusCode)
			}

			resp, err = http.Get(ts.URL + "/get?key=boot")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var got struct {
				Value string `json:"value"`
				Found bool   `json:"found"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatal(err)
			}
			if !got.Found || got.Value != "ok" {
				t.Fatalf("get boot = (%q, %v), want (ok, true)", got.Value, got.Found)
			}
		})
	}
}
