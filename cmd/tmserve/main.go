// Command tmserve is the sharded transactional key-value server: the
// native engines (stm or mvstm), behind internal/server's HTTP/JSON API.
//
//	tmserve -addr :8080 -shards 8 -engine stm -rate-per-ip 10000
//
// Endpoints: GET /get?key=K, POST /put, POST /delete, GET /scan,
// POST /batch (multi-key transactional, atomic across shards),
// GET /stats, GET /healthz. See DESIGN.md for the shard routing and
// cross-shard two-phase-locking story.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		shards    = flag.Int("shards", 8, "number of engine shards")
		engine    = flag.String("engine", "stm", "per-shard engine: stm or mvstm")
		ratePerIP = flag.Float64("rate-per-ip", 0, "per-IP request rate limit (req/s, 0 disables)")
	)
	flag.Parse()
	srv, err := build(*shards, *engine, *ratePerIP)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmserve:", err)
		os.Exit(2)
	}
	log.Printf("tmserve: engine=%s shards=%d addr=%s rate-per-ip=%g", *engine, *shards, *addr, *ratePerIP)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

// build constructs the server from flag values; split from main so tests
// cover the config plumbing without binding a socket.
func build(shards int, engine string, ratePerIP float64) (*server.Server, error) {
	return server.New(server.Config{
		Shards:    shards,
		Engine:    engine,
		RatePerIP: ratePerIP,
	})
}
