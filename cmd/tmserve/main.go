// Command tmserve is the sharded transactional key-value server: the
// native engines (stm or mvstm), behind internal/server's HTTP/JSON API.
//
//	tmserve -addr :8080 -shards 8 -engine stm -rate-per-ip 10000
//	tmserve -profile 64 -latency-sample 64 -pprof
//
// Endpoints: GET /get?key=K, POST /put, POST /delete, GET /scan,
// POST /batch (multi-key transactional, atomic across shards),
// GET /stats, GET /metrics (Prometheus text exposition), GET /healthz,
// and — only with -pprof — the net/http/pprof handlers under
// /debug/pprof/. See DESIGN.md for the shard routing, two-phase-locking
// and observability stories.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"

	"repro/internal/server"
)

// options carries the flag values; split from flag parsing so tests
// cover the wiring without binding a socket.
type options struct {
	shards        int
	engine        string
	ratePerIP     float64
	profileK      int
	profileSample int
	latencySample int
	pprof         bool
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		shards    = flag.Int("shards", 8, "number of engine shards")
		engine    = flag.String("engine", "stm", "per-shard engine: stm or mvstm")
		ratePerIP = flag.Float64("rate-per-ip", 0, "per-IP request rate limit (req/s, 0 disables)")
		profileK  = flag.Int("profile", 0, "hot-key contention sketch slots (0 disables profiling)")
		profSamp  = flag.Int("profile-sample", 1, "admit roughly 1 in this many aborts into the sketch")
		latSamp   = flag.Int("latency-sample", 0, "sample roughly 1 in this many commits into the engine latency histograms (0 disables)")
		pprofOn   = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (opt-in)")
	)
	flag.Parse()
	o := options{
		shards:        *shards,
		engine:        *engine,
		ratePerIP:     *ratePerIP,
		profileK:      *profileK,
		profileSample: *profSamp,
		latencySample: *latSamp,
		pprof:         *pprofOn,
	}
	srv, err := build(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmserve:", err)
		os.Exit(2)
	}
	log.Printf("tmserve: engine=%s shards=%d addr=%s rate-per-ip=%g profile=%d latency-sample=%d pprof=%v",
		o.engine, o.shards, *addr, o.ratePerIP, o.profileK, o.latencySample, o.pprof)
	log.Fatal(http.ListenAndServe(*addr, mount(srv, o.pprof)))
}

// build constructs the server from flag values.
func build(o options) (*server.Server, error) {
	return server.New(server.Config{
		Shards:        o.shards,
		Engine:        o.engine,
		RatePerIP:     o.ratePerIP,
		ProfileK:      o.profileK,
		ProfileSample: o.profileSample,
		LatencySample: o.latencySample,
	})
}

// mount assembles the process handler: the server's own (rate-limited,
// recovered, metered) handler at the root, with the pprof handlers
// mounted beside it when enabled — outside the rate limiter, since a
// profile fetch is an operator action, not tenant traffic.
func mount(srv *server.Server, withPprof bool) http.Handler {
	if !withPprof {
		return srv.Handler()
	}
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
