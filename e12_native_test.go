package progressivetm

// The native half of experiment E12 (hostile tenants): a writer pool
// doing small point RMWs shares an engine with a tenant running
// unbounded full-table scans. Unmetered, the scanner goroutines are free
// to spend a full scan's work per attempt and the writers' throughput
// collapses to their scheduler share. Metered, two library layers
// restore it: a BudgetPolicy refuses each scan after a fixed grant
// (ErrOutOfBudget), and a tenant-scoped budget.Controller — fed by the
// tenant's own (completed, refused) history, which is all refusals —
// pins the tenant's admission at MinRate, so the refused tenant sleeps
// instead of spinning. The engine-global admission controller
// (SetAdmission, fed by ReadStats) is installed too and must stay
// disengaged: with the hostile tenant throttled at its own bucket, the
// fleet-wide abort ratio stays healthy — that is the layering the
// DESIGN.md metering section describes.
//
// BenchmarkE12HostileTenant reports writer ns/op across the three cells
// (baseline / unmetered / metered); the acceptance comparison — metered
// writer throughput ≥5× unmetered and within 40% of baseline — is read
// off the cell ratios. TestE12HostileTenant is the race-smoke version:
// exact refusal accounting in ReadStats and no leaked locks or epoch
// registrations afterwards.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/stm"
	"repro/stm/budget"
	"repro/stm/mvstm"
)

const (
	e12Keys      = 512
	e12Scanners  = 8
	e12ScanGrant = 256 // unit-cost grant: refused mid-scan, enough for any RMW
)

// e12Tenant is the hostile tenant: scanner goroutines issuing full-table
// scans until ctx is canceled, each admission gated by an optional
// tenant-local controller. It records completed and refused scans.
type e12Tenant struct {
	completed atomic.Uint64
	refused   atomic.Uint64
	wg        sync.WaitGroup
}

// run starts n scanner goroutines calling scan (one full-table attempt,
// returning the engine's verdict) until ctx is canceled.
func (h *e12Tenant) run(ctx context.Context, n int, admit budget.Admitter, scan func(context.Context) error) {
	for i := 0; i < n; i++ {
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			for ctx.Err() == nil {
				if admit != nil {
					admit.Admit()
				}
				switch err := scan(ctx); {
				case err == nil:
					h.completed.Add(1)
				case errors.Is(err, budget.ErrOutOfBudget):
					h.refused.Add(1)
				case errors.Is(err, context.Canceled):
					return
				default:
					panic(fmt.Sprintf("e12 scanner: unexpected error: %v", err))
				}
			}
		}()
	}
}

// tenantController is the tenant-scoped admission bucket: it watches the
// tenant's own outcome history, so a tenant whose scans are all refused
// drives its own ratio to 1 and parks itself at MinRate.
func (h *e12Tenant) controller() *budget.Controller {
	c := budget.NewController(func() (uint64, uint64) {
		return h.completed.Load(), h.refused.Load()
	})
	c.MinSampleTotal = 4 // a throttled tenant produces few samples per window
	return c
}

func BenchmarkE12HostileTenant(b *testing.B) {
	type cell struct {
		name     string
		scanners int
		metered  bool
	}
	cells := []cell{
		{"mode=baseline", 0, false},
		{"mode=unmetered", e12Scanners, false},
		{"mode=metered", e12Scanners, true},
	}
	b.Run("engine=stm", func(b *testing.B) {
		for _, c := range cells {
			b.Run(c.name, func(b *testing.B) {
				vars := make([]*stm.Var[int], e12Keys)
				for i := range vars {
					vars[i] = stm.NewVar(i)
				}
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				var tenant e12Tenant
				if c.metered {
					stm.SetBudgetPolicy(budget.Fixed{Limit: e12ScanGrant})
					stm.SetAdmission(budget.NewController(func() (uint64, uint64) {
						s := stm.ReadStats()
						return s.Commits, s.Aborts
					}))
					defer stm.SetBudgetPolicy(nil)
					defer stm.SetAdmission(nil)
				}
				var admit budget.Admitter
				if c.metered {
					admit = tenant.controller()
				}
				tenant.run(ctx, c.scanners, admit, func(ctx context.Context) error {
					return stm.AtomicallyCtx(ctx, func(tx *stm.Tx) error {
						s := 0
						for _, v := range vars {
							s += v.Get(tx)
						}
						_ = s
						return nil
					})
				})
				rng := uint64(1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					v := vars[rng%e12Keys]
					_ = stm.Atomically(func(tx *stm.Tx) error {
						v.Set(tx, v.Get(tx)+1)
						return nil
					})
				}
				b.StopTimer()
				cancel()
				tenant.wg.Wait()
				b.ReportMetric(float64(tenant.refused.Load()), "scans-refused")
				b.ReportMetric(float64(tenant.completed.Load()), "scans-done")
			})
		}
	})
	b.Run("engine=mvstm", func(b *testing.B) {
		for _, c := range cells {
			b.Run(c.name, func(b *testing.B) {
				vars := make([]*mvstm.Var[int], e12Keys)
				for i := range vars {
					vars[i] = mvstm.NewVar(i)
				}
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				var tenant e12Tenant
				if c.metered {
					mvstm.SetBudgetPolicy(budget.Fixed{Limit: e12ScanGrant})
					mvstm.SetAdmission(budget.NewController(func() (uint64, uint64) {
						s := mvstm.ReadStats()
						return s.Commits, s.Aborts
					}))
					defer mvstm.SetBudgetPolicy(nil)
					defer mvstm.SetAdmission(nil)
				}
				var admit budget.Admitter
				if c.metered {
					admit = tenant.controller()
				}
				tenant.run(ctx, c.scanners, admit, func(ctx context.Context) error {
					// The abort-free snapshot path: without the chain-walk
					// charge this scan could never be stopped by the engine.
					return mvstm.AtomicallyROCtx(ctx, func(tx *mvstm.Tx) error {
						s := 0
						for _, v := range vars {
							s += v.Get(tx)
						}
						_ = s
						return nil
					})
				})
				rng := uint64(1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					v := vars[rng%e12Keys]
					_ = mvstm.Atomically(func(tx *mvstm.Tx) error {
						v.Set(tx, v.Get(tx)+1)
						return nil
					})
				}
				b.StopTimer()
				cancel()
				tenant.wg.Wait()
				b.ReportMetric(float64(tenant.refused.Load()), "scans-refused")
				b.ReportMetric(float64(tenant.completed.Load()), "scans-done")
			})
		}
	})
}

// TestE12HostileTenant is the functional (race-smoke) version: metering
// on, hostile scanners and a writer run concurrently for a bounded
// number of refusals, then every refusal must appear in the engine's
// BudgetAborts, the writers must have progressed, and a full-table
// transaction must still commit (it could not if an abort path had
// leaked a lock or an epoch registration).
func TestE12HostileTenant(t *testing.T) {
	const keys = 64
	t.Run("engine=stm", func(t *testing.T) {
		vars := make([]*stm.Var[int], keys)
		for i := range vars {
			vars[i] = stm.NewVar(0)
		}
		stm.SetBudgetPolicy(budget.Fixed{Limit: 32})
		defer stm.SetBudgetPolicy(nil)
		before := stm.ReadStats()
		ctx, cancel := context.WithCancel(context.Background())
		var tenant e12Tenant
		tenant.run(ctx, 2, nil, func(ctx context.Context) error {
			return stm.AtomicallyCtx(ctx, func(tx *stm.Tx) error {
				s := 0
				for _, v := range vars {
					s += v.Get(tx)
				}
				_ = s
				return nil
			})
		})
		writes := 0
		for writes < 500 {
			v := vars[writes%keys]
			if err := stm.Atomically(func(tx *stm.Tx) error {
				v.Set(tx, v.Get(tx)+1)
				return nil
			}); err != nil {
				t.Fatalf("writer failed: %v", err)
			}
			writes++
		}
		for tenant.refused.Load() < 20 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		tenant.wg.Wait()
		if got := tenant.completed.Load(); got != 0 {
			t.Errorf("%d scans completed under a grant below the scan cost", got)
		}
		d := stm.ReadStats().Sub(before)
		if d.BudgetAborts != tenant.refused.Load() {
			t.Errorf("BudgetAborts = %d, want %d (one per refusal)", d.BudgetAborts, tenant.refused.Load())
		}
		if d.BudgetAborts > d.Aborts {
			t.Errorf("BudgetAborts %d > Aborts %d", d.BudgetAborts, d.Aborts)
		}
		stm.SetBudgetPolicy(nil)
		sum := 0
		if err := stm.Atomically(func(tx *stm.Tx) error {
			sum = 0
			for _, v := range vars {
				sum += v.Get(tx)
			}
			return nil
		}); err != nil {
			t.Fatalf("post-run full scan failed: %v", err)
		}
		if sum != writes {
			t.Errorf("table sum = %d, want %d committed increments", sum, writes)
		}
	})
	t.Run("engine=mvstm", func(t *testing.T) {
		vars := make([]*mvstm.Var[int], keys)
		for i := range vars {
			vars[i] = mvstm.NewVar(0)
		}
		mvstm.SetBudgetPolicy(budget.Fixed{Limit: 32})
		defer mvstm.SetBudgetPolicy(nil)
		before := mvstm.ReadStats()
		ctx, cancel := context.WithCancel(context.Background())
		var tenant e12Tenant
		tenant.run(ctx, 2, nil, func(ctx context.Context) error {
			return mvstm.AtomicallyROCtx(ctx, func(tx *mvstm.Tx) error {
				s := 0
				for _, v := range vars {
					s += v.Get(tx)
				}
				_ = s
				return nil
			})
		})
		writes := 0
		for writes < 500 {
			v := vars[writes%keys]
			if err := mvstm.Atomically(func(tx *mvstm.Tx) error {
				v.Set(tx, v.Get(tx)+1)
				return nil
			}); err != nil {
				t.Fatalf("writer failed: %v", err)
			}
			writes++
		}
		for tenant.refused.Load() < 20 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		tenant.wg.Wait()
		if got := tenant.completed.Load(); got != 0 {
			t.Errorf("%d snapshot scans completed under a grant below the scan cost", got)
		}
		d := mvstm.ReadStats().Sub(before)
		if d.BudgetAborts != tenant.refused.Load() {
			t.Errorf("BudgetAborts = %d, want %d (one per refusal)", d.BudgetAborts, tenant.refused.Load())
		}
		mvstm.SetBudgetPolicy(nil)
		sum := 0
		if err := mvstm.AtomicallyRO(func(tx *mvstm.Tx) error {
			sum = 0
			for _, v := range vars {
				sum += v.Get(tx)
			}
			return nil
		}); err != nil {
			t.Fatalf("post-run snapshot scan failed: %v", err)
		}
		if sum != writes {
			t.Errorf("table sum = %d, want %d committed increments", sum, writes)
		}
	})
}
