# Build/test/benchmark entry points. The E8 set is the native-engine
# benchmark suite of DESIGN.md's per-experiment index: commit-pipeline
# ablation (clock strategies × timestamp extension), contention sweeps,
# and the transactional-container regressions.

GO ?= go

# -cpu 4 pins the GOMAXPROCS≥4 regime the contention benchmarks target;
# -count 5 gives benchdiff/benchstat enough runs; 0.2s per benchmark keeps
# the full -count 5 sweep around a minute. The set covers E8 (commit
# pipeline, containers), the native E9 scenarios (ordered-index scans,
# reservations), the native E10 read-mostly serving scenario plus the
# read-only fast-path acceptance pair (BenchmarkROFastPath), the native
# E11 long-scan/HTAP scenario (stm vs stm/mvstm), and the native E12
# hostile-tenant scenario (baseline/unmetered/metered cells); benchdiff
# ignores names absent from an older baseline.
E8_BENCH = BenchmarkE8|BenchmarkE9Native|BenchmarkE10Native|BenchmarkE11Native|BenchmarkE12Hostile|BenchmarkROFastPath|BenchmarkVarContended|BenchmarkContentionSweep|BenchmarkMapDisjointPut|BenchmarkMapMixed|BenchmarkOrderedMap
E8_FLAGS = -run '^$$' -bench '$(E8_BENCH)' -benchtime 0.2s -count 5 -cpu 4 -timeout 30m

.PHONY: test race bench-e8 bench-baseline bench-diff bench-gate fuzz-smoke docs-check

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# bench-e8 runs the E8 suite once and leaves the raw output in
# bench_e8.txt (also the input format benchdiff accepts as -new).
bench-e8:
	$(GO) test $(E8_FLAGS) . ./stm | tee bench_e8.txt

# bench-baseline records the committed perf baseline for this PR line:
# re-runs the E8 suite and regenerates BENCH_PR6.json. Commit the result
# so later PRs have a trajectory to compare against.
bench-baseline:
	$(GO) test $(E8_FLAGS) . ./stm | tee bench_e8.txt
	$(GO) run ./cmd/benchjson -in bench_e8.txt -label PR6 \
	  -command "go test $(E8_FLAGS) . ./stm" -out BENCH_PR6.json

# bench-diff compares a fresh E8 run against the committed baseline;
# report-only (never fails on a regression).
bench-diff:
	$(GO) test $(E8_FLAGS) . ./stm > bench_new.txt
	$(GO) run ./cmd/benchdiff -baseline BENCH_PR6.json -new bench_new.txt

# bench-gate is the enforcing variant: passing -threshold makes benchdiff
# exit non-zero when any ns/op regression exceeds it (15% here). Run it on
# hardware comparable to the committed baseline; the CI job deliberately
# stays report-only because shared runners make wall-clock deltas noise.
bench-gate:
	$(GO) test $(E8_FLAGS) . ./stm > bench_new.txt
	$(GO) run ./cmd/benchdiff -baseline BENCH_PR6.json -new bench_new.txt -threshold 0.15

# fuzz-smoke runs each fuzz target briefly against the differential models
# (the same invocations as the CI fuzz job): the containers against plain
# maps, the mvstm engine against a model map with a pinned-snapshot
# reader racing writers and the GC, and the metering layer against the
# unmetered engine (a refusal must change nothing, a commit everything).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzMap$$' -fuzztime 10s ./stm
	$(GO) test -run '^$$' -fuzz '^FuzzOrderedMap$$' -fuzztime 10s ./stm
	$(GO) test -run '^$$' -fuzz '^FuzzMVStm$$' -fuzztime 10s ./stm/mvstm
	$(GO) test -run '^$$' -fuzz '^FuzzBudget$$' -fuzztime 10s ./stm

# docs-check keeps the documentation executable: formatting, vet, and
# every Example function in the repository (the README quickstart mirrors
# ExampleAtomically, so a rotted example fails CI here).
docs-check:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
	  echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -run Example ./...
