# Build/test/benchmark entry points. The E8 set is the native-engine
# benchmark suite of DESIGN.md's per-experiment index: commit-pipeline
# ablation (clock strategies × timestamp extension), contention sweeps,
# and the transactional-container regressions.

GO ?= go

# PR names the committed perf-baseline label: bench-baseline writes
# BENCH_$(PR).json and bench-diff/bench-gate read it. Override per PR
# line (make bench-baseline PR=PR9) instead of hand-editing the recipes.
PR ?= PR7
BASELINE = BENCH_$(PR).json

# -cpu 4 pins the GOMAXPROCS≥4 regime the contention benchmarks target;
# -count 8 gives benchdiff's min-vs-min gate a usable per-cell minimum —
# on a shared host the per-run distribution is heavy-tailed upward (true
# spreads of 40%+ were measured on cells whose 5-run range looked like
# 15%), and the minimum of too few samples lands in the tail often enough
# to fail one arbitrary cell per gate run; 0.2s per benchmark keeps the
# full sweep under ten minutes. The set covers E8 (commit
# pipeline, containers), the native E9 scenarios (ordered-index scans,
# reservations), the native E10 read-mostly serving scenario plus the
# read-only fast-path acceptance pair (BenchmarkROFastPath), the native
# E11 long-scan/HTAP scenario (stm vs stm/mvstm), the native E12
# hostile-tenant scenario (baseline/unmetered/metered cells), and the
# native STAMP-shaped trio — E13 graph routing (write-set promotion),
# E14 clustering (contended point RMWs), E15 pipeline (stm.Queue
# blocking handoff); benchdiff ignores names absent from an older
# baseline.
E8_BENCH = BenchmarkE8|BenchmarkE9Native|BenchmarkE10Native|BenchmarkE11Native|BenchmarkE12Hostile|BenchmarkE13GraphRouting|BenchmarkE14Clustering|BenchmarkE15Pipeline|BenchmarkROFastPath|BenchmarkVarContended|BenchmarkContentionSweep|BenchmarkMapDisjointPut|BenchmarkMapMixed|BenchmarkOrderedMap
# -benchmem records B/op and allocs/op in every baseline — the input the
# bench-gate zero-allocation assertion reads.
E8_FLAGS = -run '^$$' -bench '$(E8_BENCH)' -benchtime 0.2s -count 8 -cpu 4 -benchmem -timeout 30m

# ZEROALLOC names the steady-state cells that must never allocate: the
# single-writer mvstm snapshot cells of the E11 HTAP scan (pooled version
# chains) and both read-only fast-path cells. bench-gate fails if any of
# them reports a nonzero allocs/op. The writers=4 mvstm cells are
# deliberately excluded: at -cpu 4 they run five pinned goroutines on four
# Ps, so one is always descheduled mid-pin, freezing the epoch floor for a
# scheduler quantum while the running writers retire chains — the retired
# lists overflow and drop to the GC by design (see "Pooled version chains"
# in DESIGN.md; buffering past a quantum just trades the misses for GC
# pressure).
ZEROALLOC = E11NativeScan/.*writers=1/engine=mvstm|BenchmarkROFastPath

.PHONY: test race server-test bench-e8 bench-baseline bench-diff bench-gate bench-scaling fuzz-smoke overhead-smoke docs-check

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# server-test is the serving-tier gate the CI server job runs: the
# internal/server integration suite (including the Prometheus exposition
# golden test), the observability packages, and the tmserve/tmstat wiring
# under -race, then a tmload smoke sweep against in-process servers.
server-test:
	$(GO) test -race -count=1 ./internal/server ./internal/loghist ./internal/telemetry \
	  ./cmd/tmserve ./cmd/tmload ./cmd/tmstat
	$(GO) run ./cmd/tmload -smoke
	$(GO) run ./cmd/tmload -smoke -engine mvstm

# bench-e8 runs the E8 suite once and leaves the raw output in
# bench_e8.txt (also the input format benchdiff accepts as -new).
bench-e8:
	$(GO) test $(E8_FLAGS) . ./stm | tee bench_e8.txt

# bench-baseline records the committed perf baseline for this PR line:
# re-runs the E8 suite and regenerates BENCH_$(PR).json. Commit the
# result so later PRs have a trajectory to compare against.
bench-baseline:
	$(GO) test $(E8_FLAGS) . ./stm | tee bench_e8.txt
	$(GO) run ./cmd/benchjson -in bench_e8.txt -label $(PR) \
	  -command "go test $(E8_FLAGS) . ./stm" -out $(BASELINE)

# bench-diff compares a fresh E8 run against the committed baseline;
# report-only (never fails on a regression).
bench-diff:
	$(GO) test $(E8_FLAGS) . ./stm > bench_new.txt
	$(GO) run ./cmd/benchdiff -baseline $(BASELINE) -new bench_new.txt

# bench-gate is the enforcing variant: passing -threshold makes benchdiff
# exit non-zero when an ns/op regression survives its noise calibrations
# (min-vs-min comparison, suite-median era-shift normalization, per-cell
# spread tolerance — see cmd/benchdiff), and -zeroalloc fails the run if
# any steady-state cell allocates in every -count run. The 25% threshold
# is calibrated to the measured same-source residual ceiling on a shared
# host: repeated baseline-vs-gate pairs of IDENTICAL code left ~20%
# residuals on some cell nearly every run, so gating below that only
# measures the neighbors. Run it on hardware comparable to the committed
# baseline; the CI job deliberately stays report-only because shared
# runners make wall-clock deltas noise (the allocation assertion, by
# contrast, is hardware-free).
bench-gate:
	$(GO) test $(E8_FLAGS) . ./stm > bench_new.txt
	$(GO) run ./cmd/benchdiff -baseline $(BASELINE) -new bench_new.txt \
	  -threshold 0.25 -zeroalloc '$(ZEROALLOC)'

# bench-scaling is the high-core commit-pipeline scaling row: the
# contended clock-strategy sweep and the E11 HTAP scan at -cpu 16 and 32,
# where the GV7 block allocator's fetch-add amortization separates from
# GV4's per-commit CAS. Report-only; compare the -16/-32 rows by eye or
# feed scaling.txt to benchstat.
bench-scaling:
	$(GO) test -run '^$$' -bench 'BenchmarkVarContended|BenchmarkE11NativeScan' \
	  -benchtime 0.2s -count 3 -cpu 16,32 -benchmem -timeout 30m . ./stm | tee scaling.txt

# fuzz-smoke runs each fuzz target briefly against the differential models
# (the same invocations as the CI fuzz job): the containers against plain
# maps, the mvstm engine against a model map with a pinned-snapshot
# reader racing writers and the GC, the metering layer against the
# unmetered engine (a refusal must change nothing, a commit everything),
# and the contention sketch against a sequential frequency model (the
# space-saving overestimate bound must hold on arbitrary id streams).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzMap$$' -fuzztime 10s ./stm
	$(GO) test -run '^$$' -fuzz '^FuzzOrderedMap$$' -fuzztime 10s ./stm
	$(GO) test -run '^$$' -fuzz '^FuzzMVStm$$' -fuzztime 10s ./stm/mvstm
	$(GO) test -run '^$$' -fuzz '^FuzzBudget$$' -fuzztime 10s ./stm
	$(GO) test -run '^$$' -fuzz '^FuzzSketch$$' -fuzztime 10s ./internal/telemetry

# overhead-smoke is the telemetry A/B gate mirroring the PR 6 metering
# discipline: the uncontended transaction round-trip with telemetry off
# vs with a sketch installed and a sparse latency-sampling period, must
# differ by under 3% (interleaved min-of-N, see stm/overhead_test.go).
# Env-gated so `go test ./...` stays deterministic on loaded machines;
# run it on quiet hardware when touching the engines' begin/commit paths.
overhead-smoke:
	TM_OVERHEAD_SMOKE=1 $(GO) test -run '^TestTelemetryOffOverhead$$' -count=1 -v ./stm

# docs-check keeps the documentation executable: formatting, vet, and
# every Example function in the repository (the README quickstart mirrors
# ExampleAtomically, so a rotted example fails CI here).
docs-check:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
	  echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -run Example ./...
